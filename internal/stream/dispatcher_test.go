package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// dispPipeline builds a two-stage pipeline: double then add-one. A
// negative input makes the first stage fail, exercising per-request
// error routing.
func dispPipeline(t *testing.T) *Pipeline {
	t.Helper()
	double := HandlerFunc{StageName: "double", Fn: func(_ context.Context, m *Message) (*Message, error) {
		v := m.Payload.(int)
		if v < 0 {
			return nil, fmt.Errorf("negative input %d", v)
		}
		return &Message{Payload: v * 2}, nil
	}}
	inc := HandlerFunc{StageName: "inc", Fn: func(_ context.Context, m *Message) (*Message, error) {
		return &Message{Payload: m.Payload.(int) + 1}, nil
	}}
	p, err := NewPipeline(2, double, inc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDispatcherConcurrentSubmitters: many goroutines submit their own
// requests and each receives exactly its own result.
func TestDispatcherConcurrentSubmitters(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d, err := NewDispatcher(ctx, dispPipeline(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := d.Do(ctx, i)
			if err != nil {
				errs <- err
				return
			}
			if m.Err != "" {
				errs <- errors.New(m.Err)
				return
			}
			if got := m.Payload.(int); got != i*2+1 {
				errs <- fmt.Errorf("request %d got %d, want %d", i, got, i*2+1)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if d.Completed() != n || d.Failed() != 0 || d.InFlight() != 0 {
		t.Errorf("counters: completed=%d failed=%d inflight=%d", d.Completed(), d.Failed(), d.InFlight())
	}
}

// TestDispatcherErrorIsolation: a failing request returns its own error
// (with the failing stage) without disturbing concurrent successes.
func TestDispatcherErrorIsolation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d, err := NewDispatcher(ctx, dispPipeline(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	bad, err := d.Submit(ctx, -7)
	if err != nil {
		t.Fatal(err)
	}
	good, err := d.Submit(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := bad.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if bm.Err == "" || bm.FailedStage != "double" {
		t.Errorf("bad request: err=%q stage=%q", bm.Err, bm.FailedStage)
	}
	gm, err := good.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gm.Err != "" || gm.Payload.(int) != 11 {
		t.Errorf("good request disturbed: %+v", gm)
	}
	if d.Failed() != 1 {
		t.Errorf("failed counter %d", d.Failed())
	}
}

// TestDispatcherWindowBounds: the in-flight window limits concurrent
// admissions; a full window blocks Submit until a request completes.
func TestDispatcherWindowBounds(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	gate := make(chan struct{})
	stall := HandlerFunc{StageName: "stall", Fn: func(ctx context.Context, m *Message) (*Message, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &Message{Payload: m.Payload}, nil
	}}
	p, err := NewPipeline(1, stall)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDispatcher(ctx, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(ctx, 2); err != nil {
		t.Fatal(err)
	}
	// Third submit must block on the window.
	blocked, bcancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer bcancel()
	if _, err := d.Submit(blocked, 3); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("window did not bound admission: %v", err)
	}
	if got := d.InFlight(); got != 2 {
		t.Errorf("inflight %d, want 2", got)
	}
	close(gate)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDispatcherClose: Close drains in-flight work, stops the stage
// goroutines, and rejects later submissions.
func TestDispatcherClose(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d, err := NewDispatcher(ctx, dispPipeline(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := d.Submit(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	closeErr := make(chan error, 1)
	go func() { closeErr <- d.Close() }()
	m, err := f.Wait(ctx)
	if err != nil {
		t.Fatalf("in-flight request lost on close: %v", err)
	}
	if m.Payload.(int) != 7 {
		t.Errorf("payload %v", m.Payload)
	}
	if err := <-closeErr; err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(ctx, 4); !errors.Is(err, ErrDispatcherClosed) {
		t.Errorf("submit after close: %v", err)
	}
}

// TestDispatcherSubmitCloseRace: Submits racing Close must never panic
// (a Submit past the closed-check sending on a closed intake edge) nor
// deadlock; every Submit either errors or yields a Future whose Wait
// terminates. Run under -race.
func TestDispatcherSubmitCloseRace(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		d, err := NewDispatcher(ctx, dispPipeline(t), 4)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		const n = 16
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < n; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				f, err := d.Submit(ctx, i)
				if err != nil {
					return // lost the race with Close: acceptable
				}
				// Wait must terminate: with a result before the close
				// barrier, or the dispatcher's terminal error.
				if _, err := f.Wait(ctx); err != nil && !errors.Is(err, ErrDispatcherClosed) {
					t.Errorf("wait: %v", err)
				}
			}()
		}
		closed := make(chan error, 1)
		go func() {
			<-start
			closed <- d.Close()
		}()
		close(start)
		wg.Wait()
		if err := <-closed; err != nil {
			t.Fatalf("close: %v", err)
		}
		cancel()
	}
}

// TestDispatcherFailReleasesWindow: when the reader dies (here: its ctx
// cancelled under a stalled stage), in-flight requests will never
// release their window slots — later Submits must still unblock with
// the terminal error instead of waiting forever on the full window.
func TestDispatcherFailReleasesWindow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stall := HandlerFunc{StageName: "stall", Fn: func(ctx context.Context, m *Message) (*Message, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	p, err := NewPipeline(1, stall)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDispatcher(ctx, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit(ctx, 1); err != nil { // fills the window
		t.Fatal(err)
	}
	cancel() // kills the reader with the slot still held
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	for {
		_, err := d.Submit(waitCtx, 2)
		if err == nil {
			// Won the race with the reader's own demise; the slot came
			// back, try again until the failure is recorded.
			continue
		}
		if errors.Is(err, context.DeadlineExceeded) {
			t.Fatal("Submit hung on a window slot the failed reader will never release")
		}
		break // terminal dispatcher error: the fix works
	}
}
