package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrDispatcherClosed is returned by Submit after Close, and by Future.Wait
// when the dispatcher shut down before the request completed.
var ErrDispatcherClosed = errors.New("stream: dispatcher closed")

// Dispatcher turns a Pipeline's single ordered result stream into
// per-request completion: any number of goroutines Submit with their own
// context and receive their own result (or error) through a Future. A
// reader goroutine demuxes completed messages by Seq, so in-flight
// requests from independent submitters interleave freely inside the
// pipeline — the serving shape the paper's streaming runtime needs, as
// opposed to the one-shot batch drain of a bare Recv loop.
//
// The dispatcher owns the pipeline lifecycle: NewDispatcher starts it and
// Close drains and stops it, so no stage goroutines outlive the
// dispatcher.
type Dispatcher struct {
	p *Pipeline
	// window, when non-nil, bounds concurrently in-flight requests: a
	// slot is taken at Submit and released when the request leaves the
	// pipeline (not when the waiter collects it), so abandoned waiters
	// cannot grow the in-flight set beyond the bound.
	window chan struct{}

	inflight  atomic.Int64
	completed atomic.Uint64
	failed    atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan *Message
	err     error
	closed  bool
	// submitting counts Submit calls past the closed-check that have not
	// yet finished enqueuing. Close waits for them before closing the
	// pipeline's intake edge, so a Submit that won the admission race can
	// never send on a closed edge.
	submitting sync.WaitGroup

	// down is closed when the reader terminates with an error, so window
	// waiters unblock even though the slots held by in-flight requests at
	// failure time will never be released.
	down     chan struct{}
	downOnce sync.Once

	readerDone chan struct{}
}

// NewDispatcher starts the pipeline and its completion reader. window > 0
// bounds the number of concurrently in-flight requests (backpressure for
// submitters beyond the pipeline's own edge buffers); window <= 0 leaves
// admission unbounded. ctx governs the pipeline stages and the reader.
func NewDispatcher(ctx context.Context, p *Pipeline, window int) (*Dispatcher, error) {
	if err := p.Start(ctx); err != nil {
		return nil, err
	}
	d := &Dispatcher{
		p:          p,
		pending:    map[uint64]chan *Message{},
		down:       make(chan struct{}),
		readerDone: make(chan struct{}),
	}
	if window > 0 {
		d.window = make(chan struct{}, window)
	}
	go d.read(ctx)
	return d, nil
}

// read demuxes pipeline results to registered waiters until the pipeline
// drains (Close) or fails.
func (d *Dispatcher) read(ctx context.Context) {
	defer close(d.readerDone)
	for {
		m, err := d.p.Recv(ctx)
		if err != nil {
			if errors.Is(err, ErrEdgeClosed) {
				d.fail(ErrDispatcherClosed)
			} else {
				d.fail(fmt.Errorf("stream: dispatcher reader: %w", err))
			}
			return
		}
		d.inflight.Add(-1)
		if m.Err != "" {
			d.failed.Add(1)
		} else {
			d.completed.Add(1)
		}
		if d.window != nil {
			<-d.window
		}
		d.mu.Lock()
		ch := d.pending[m.Seq]
		delete(d.pending, m.Seq)
		d.mu.Unlock()
		if ch != nil {
			ch <- m // buffered: never blocks the reader
		}
	}
}

// fail records the terminal error, wakes every waiter, and unblocks
// window waiters: requests in flight at failure time will never leave
// the pipeline through the reader, so their slots would otherwise stay
// occupied forever and later Submits would block on the window without
// ever seeing the terminal error.
func (d *Dispatcher) fail(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	for seq, ch := range d.pending {
		close(ch)
		delete(d.pending, seq)
	}
	d.mu.Unlock()
	d.downOnce.Do(func() { close(d.down) })
}

// Future is one submitted request's completion handle.
type Future struct {
	d   *Dispatcher
	seq uint64
	ch  chan *Message
}

// Seq returns the request's pipeline sequence number.
func (f *Future) Seq() uint64 { return f.seq }

// Wait blocks until the request completes (the returned message may carry
// a per-request Err), the dispatcher terminates, or ctx expires. A ctx
// expiry abandons the wait but not the request: it still occupies its
// in-flight slot until it leaves the pipeline.
func (f *Future) Wait(ctx context.Context) (*Message, error) {
	select {
	case m, ok := <-f.ch:
		if !ok {
			return nil, f.d.terminalErr()
		}
		return m, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (d *Dispatcher) terminalErr() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return d.err
	}
	return ErrDispatcherClosed
}

// Submit reserves a sequence number, registers the completion route, and
// enqueues the payload. It blocks while the in-flight window (and then
// the pipeline's first edge) is full; a dispatcher that terminated while
// the caller was waiting returns the terminal error rather than blocking
// forever on slots no reader will ever release.
func (d *Dispatcher) Submit(ctx context.Context, payload any) (*Future, error) {
	if d.window != nil {
		select {
		case d.window <- struct{}{}:
		case <-d.down:
			return nil, d.terminalErr()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	release := func() {
		if d.window != nil {
			// Non-blocking: after a failure the reader is gone and the
			// window is write-only; the down channel already unblocks
			// future submitters.
			select {
			case <-d.window:
			default:
			}
		}
	}
	d.mu.Lock()
	if d.closed || d.err != nil {
		err := d.err
		d.mu.Unlock()
		release()
		if err == nil {
			err = ErrDispatcherClosed
		}
		return nil, err
	}
	seq := d.p.Reserve()
	ch := make(chan *Message, 1)
	d.pending[seq] = ch
	d.submitting.Add(1)
	d.mu.Unlock()

	d.inflight.Add(1)
	err := d.p.SubmitReserved(ctx, seq, payload)
	d.submitting.Done()
	if err != nil {
		d.inflight.Add(-1)
		d.mu.Lock()
		delete(d.pending, seq)
		d.mu.Unlock()
		release()
		return nil, err
	}
	return &Future{d: d, seq: seq, ch: ch}, nil
}

// Do is Submit followed by Wait: the synchronous per-request call most
// submitters want.
func (d *Dispatcher) Do(ctx context.Context, payload any) (*Message, error) {
	f, err := d.Submit(ctx, payload)
	if err != nil {
		return nil, err
	}
	return f.Wait(ctx)
}

// InFlight reports how many submitted requests have not yet completed.
func (d *Dispatcher) InFlight() int64 { return d.inflight.Load() }

// Completed reports how many requests finished without a per-request
// error; Failed counts those that completed carrying one.
func (d *Dispatcher) Completed() uint64 { return d.completed.Load() }

// Failed reports how many requests completed with a per-request error.
func (d *Dispatcher) Failed() uint64 { return d.failed.Load() }

// Close stops admission, lets in-flight requests drain, stops the
// pipeline stages, and returns the first stage error, if any. Safe to
// call more than once.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	already := d.closed
	d.closed = true
	d.mu.Unlock()
	if !already {
		// Admission is stopped (closed is set), but a Submit that passed
		// the closed check may still be enqueuing: closing the intake edge
		// under it would panic the send. Wait them out first.
		d.submitting.Wait()
		d.p.Close()
	}
	<-d.readerDone
	return d.p.Wait()
}
