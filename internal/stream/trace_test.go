package stream

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"ppstream/internal/obs"
)

// TestTraceOneSpanPerStage asserts a completed message carries exactly
// one span per stage, in order, with non-negative durations.
func TestTraceOneSpanPerStage(t *testing.T) {
	names := []string{"s1", "s2", "s3"}
	handlers := make([]Handler, len(names))
	for i, n := range names {
		handlers[i] = addHandler(n, 1)
	}
	p, err := NewPipeline(2, handlers...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p.Start(ctx)
	const n = 4
	go func() {
		for i := 0; i < n; i++ {
			p.Submit(ctx, i)
		}
		p.Close()
	}()
	for i := 0; i < n; i++ {
		m, err := p.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Trace == nil {
			t.Fatal("completed message has no trace")
		}
		if len(m.Trace.Spans) != len(names) {
			t.Fatalf("trace has %d spans, want %d: %+v", len(m.Trace.Spans), len(names), m.Trace.Spans)
		}
		for j, span := range m.Trace.Spans {
			if span.Stage != names[j] {
				t.Errorf("span %d stage %q, want %q", j, span.Stage, names[j])
			}
			if span.Wait < 0 || span.Busy < 0 {
				t.Errorf("span %d has negative durations: %+v", j, span)
			}
		}
		if m.Trace.Total() < 0 {
			t.Errorf("trace total negative: %v", m.Trace.Total())
		}
	}
	p.Wait()
}

// TestErrorPreservesPayloadAndTrace asserts a handler failure keeps the
// failing stage's input payload and the trace on the errored message.
func TestErrorPreservesPayloadAndTrace(t *testing.T) {
	boom := HandlerFunc{StageName: "boom", Fn: func(_ context.Context, m *Message) (*Message, error) {
		return nil, fmt.Errorf("injected")
	}}
	p, _ := NewPipeline(2, addHandler("pre", 1), boom, addHandler("post", 1))
	ctx := context.Background()
	p.Start(ctx)
	go func() {
		p.Submit(ctx, 41)
		p.Close()
	}()
	m, err := p.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Err == "" {
		t.Fatal("expected an errored message")
	}
	if m.FailedStage != "boom" {
		t.Errorf("FailedStage %q, want boom", m.FailedStage)
	}
	// "pre" added 1, so the payload entering boom was 42.
	if got, ok := m.FailedPayload.(int); !ok || got != 42 {
		t.Errorf("FailedPayload %v (%T), want 42", m.FailedPayload, m.FailedPayload)
	}
	if m.Trace == nil || len(m.Trace.Spans) != 3 {
		t.Fatalf("errored message trace %+v, want 3 spans", m.Trace)
	}
	// Downstream pass-through stage recorded zero busy time.
	if last := m.Trace.Spans[2]; last.Stage != "post" || last.Busy != 0 {
		t.Errorf("pass-through span %+v, want post with zero busy", last)
	}
	p.Wait()
}

// TestErrorPassThroughDoesNotSkewWait asserts errored pass-throughs stay
// out of a downstream stage's wait/busy metrics.
func TestErrorPassThroughDoesNotSkewWait(t *testing.T) {
	boom := HandlerFunc{StageName: "boom", Fn: func(_ context.Context, m *Message) (*Message, error) {
		if m.Payload.(int) == 0 {
			return nil, fmt.Errorf("injected")
		}
		return m, nil
	}}
	p, _ := NewPipeline(2, boom, addHandler("post", 1))
	ctx := context.Background()
	p.Start(ctx)
	go func() {
		for i := 0; i < 3; i++ {
			p.Submit(ctx, i)
		}
		p.Close()
	}()
	for i := 0; i < 3; i++ {
		if _, err := p.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	snap := p.Stages()[1].Metrics().Snapshot()
	if snap.Processed != 2 {
		t.Errorf("post processed %d, want 2 (errored message must not count)", snap.Processed)
	}
}

func TestPipelineSnapshotAndInstrument(t *testing.T) {
	reg := obs.NewRegistry("pipeline")
	p, _ := NewPipeline(3, addHandler("a", 1), addHandler("b", 1))
	p.Instrument(reg)
	ctx := context.Background()
	p.Start(ctx)
	const n = 6
	go func() {
		for i := 0; i < n; i++ {
			p.Submit(ctx, i)
		}
		p.Close()
	}()
	for i := 0; i < n; i++ {
		if _, err := p.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()

	snaps := p.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("%d stage snapshots, want 2", len(snaps))
	}
	for _, s := range snaps {
		if s.Processed != n {
			t.Errorf("stage %s processed %d, want %d", s.Stage, s.Processed, n)
		}
		if s.QueueCap != 3 {
			t.Errorf("stage %s queue cap %d, want 3", s.Stage, s.QueueCap)
		}
		if s.QueueDepth != 0 {
			t.Errorf("stage %s drained queue depth %d, want 0", s.Stage, s.QueueDepth)
		}
	}
	rs := reg.Snapshot()
	for _, name := range []string{"stage.a.wait", "stage.a.busy", "stage.b.wait", "stage.b.busy"} {
		h, ok := rs.Histograms[name]
		if !ok || h.Count != n {
			t.Errorf("histogram %s count %d (ok=%v), want %d", name, h.Count, ok, n)
		}
	}
	if _, ok := rs.Gauges["edge.a.in.depth"]; !ok {
		t.Error("queue depth gauge not registered")
	}
}

// TestSubmitConcurrentSeq checks atomic sequence assignment under
// parallel submitters (run with -race).
func TestSubmitConcurrentSeq(t *testing.T) {
	p, _ := NewPipeline(64, addHandler("a", 0))
	ctx := context.Background()
	p.Start(ctx)
	const workers, per = 4, 16
	done := make(chan struct{})
	go func() {
		defer close(done)
		seen := map[uint64]bool{}
		for i := 0; i < workers*per; i++ {
			m, err := p.Recv(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			if seen[m.Seq] {
				t.Errorf("duplicate seq %d", m.Seq)
			}
			seen[m.Seq] = true
		}
	}()
	var wg chan struct{} = make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < per; i++ {
				if _, err := p.Submit(ctx, i); err != nil {
					t.Error(err)
				}
			}
			wg <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-wg
	}
	p.Close()
	<-done
	p.Wait()
}

// TestInstrumentedTCPEdge checks wire byte/frame counters and that the
// trace survives the TCP hop.
func TestInstrumentedTCPEdge(t *testing.T) {
	RegisterWireType(&wirePayload{})
	reg := obs.NewRegistry("wire")
	a, b := net.Pipe()
	sender := NewInstrumentedTCPEdge(a, reg, "tcp")
	receiver := NewInstrumentedTCPEdge(b, reg, "tcp")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	sent := &Message{
		Seq:     7,
		Payload: &wirePayload{Value: 3, Note: "traced"},
		Trace:   &Trace{Spans: []Span{{Stage: "encrypt", Wait: time.Millisecond, Busy: 2 * time.Millisecond}}},
	}
	errCh := make(chan error, 1)
	go func() { errCh <- sender.Send(ctx, sent) }()
	got, err := receiver.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Payload.(*wirePayload).Note != "traced" {
		t.Fatalf("round trip mangled message: %+v", got)
	}
	if got.Trace == nil || len(got.Trace.Spans) != 1 || got.Trace.Spans[0].Stage != "encrypt" {
		t.Fatalf("trace lost over TCP edge: %+v", got.Trace)
	}
	s := reg.Snapshot()
	if s.Counters["tcp.frames_sent"] != 1 || s.Counters["tcp.frames_recv"] != 1 {
		t.Errorf("frame counters %v, want 1/1", s.Counters)
	}
	if s.Counters["tcp.bytes_sent"] == 0 || s.Counters["tcp.bytes_recv"] == 0 {
		t.Errorf("byte counters not recorded: %v", s.Counters)
	}
}
