// Package stream is PP-Stream's distributed stream processing substrate,
// standing in for the AF-Stream system the paper's prototype builds on.
// Inference requests are treated as a real-time data stream flowing
// through pipelined stages; each stage owns a pool of worker threads that
// parallelize tensor processing inside one request, while different
// requests occupy different stages simultaneously (pipeline parallelism).
//
// Stages connect through Edges. The in-process edge is a bounded channel;
// the TCP edge carries gob-encoded frames between processes/servers, so
// the same pipeline runs single-process or genuinely distributed.
package stream

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"ppstream/internal/obs"
)

// Message is one unit flowing through the pipeline: an inference request
// (or its intermediate tensor) tagged with a sequence number.
type Message struct {
	// Seq orders requests; stages preserve arrival order per edge.
	Seq uint64
	// Payload is stage-specific data. For TCP edges the concrete type
	// must be gob-registered.
	Payload any
	// Err carries a processing failure downstream so the submitter
	// learns about it; stages pass errored messages through untouched.
	Err string
	// ErrCode is a machine-readable classification of Err (see
	// internal/protocol's Code* constants): it lets a remote peer
	// distinguish retryable rejections (throttle, shed) from fatal
	// protocol errors without parsing the message text. Zero means
	// unclassified — frames from peers predating the field decode as 0.
	ErrCode int
	// FailedStage names the stage whose handler produced Err.
	FailedStage string
	// FailedPayload preserves the payload that was fed to the failing
	// stage, so the submitter can diagnose or retry the request.
	// In-process edges carry it as-is; TCP edges require the concrete
	// type to be gob-registered (like Payload).
	FailedPayload any
	// Enqueued is stamped when the message enters an edge, feeding the
	// queue-wait metric.
	Enqueued time.Time
	// Trace, when non-nil, accumulates one Span per stage the message
	// passes through. Submit attaches a fresh Trace to every request.
	Trace *Trace
}

// Span records one stage's handling of a message: the time it waited in
// the stage's input queue and the handler's execution time. Together
// the spans of a completed request are the per-stage latency breakdown
// the paper's Tables IV/V report.
type Span struct {
	Stage string
	Wait  time.Duration
	Busy  time.Duration
}

// Trace is the per-request record of stage spans, carried along the
// message (including across TCP edges) and returned with the result.
type Trace struct {
	// ID is the request's distributed-tracing identifier, assigned at
	// Submit and propagated in every wire frame so spans recorded by
	// different parties can be correlated and merged (see obs.TraceTree).
	ID    string
	Spans []Span
}

// Total sums queue-wait plus busy time across all spans: the request's
// in-pipeline latency.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	var d time.Duration
	for _, s := range t.Spans {
		d += s.Wait + s.Busy
	}
	return d
}

// Handler processes one message. Implementations parallelize internally
// across the stage's worker threads.
type Handler interface {
	// Name identifies the handler for logs and metrics.
	Name() string
	// Process consumes a message and produces the next one. It must be
	// safe to call sequentially from the stage's dispatch goroutine.
	Process(ctx context.Context, m *Message) (*Message, error)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc struct {
	StageName string
	Fn        func(ctx context.Context, m *Message) (*Message, error)
}

// Name implements Handler.
func (h HandlerFunc) Name() string { return h.StageName }

// Process implements Handler.
func (h HandlerFunc) Process(ctx context.Context, m *Message) (*Message, error) {
	return h.Fn(ctx, m)
}

// Metrics aggregates a stage's runtime counters. All fields are updated
// atomically and may be read concurrently.
type Metrics struct {
	Processed atomic.Uint64
	Errors    atomic.Uint64
	// BusyNanos accumulates handler execution time.
	BusyNanos atomic.Int64
	// WaitNanos accumulates time messages spent queued before this
	// stage.
	WaitNanos atomic.Int64
}

// Snapshot returns a plain-values copy.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Processed: m.Processed.Load(),
		Errors:    m.Errors.Load(),
		Busy:      time.Duration(m.BusyNanos.Load()),
		Wait:      time.Duration(m.WaitNanos.Load()),
	}
}

// MetricsSnapshot is a point-in-time view of stage metrics.
type MetricsSnapshot struct {
	Processed uint64
	Errors    uint64
	Busy      time.Duration
	Wait      time.Duration
}

// Stage runs a handler between an input and an output edge.
type Stage struct {
	name    string
	handler Handler
	in      Edge
	out     Edge
	metrics Metrics
	// Optional obs instrumentation (set via Instrument before Start):
	// latency histograms feeding p50/p95/p99 snapshots, plus a windowed
	// busy-time view so /debug/live shows which stage is hot right now
	// rather than averaged over the process lifetime.
	waitHist *obs.Histogram
	busyHist *obs.Histogram
	liveBusy *obs.WindowedHistogram
}

// NewStage creates a stage. Both edges must be non-nil.
func NewStage(name string, h Handler, in, out Edge) (*Stage, error) {
	if h == nil {
		return nil, fmt.Errorf("stream: stage %s has no handler", name)
	}
	if in == nil || out == nil {
		return nil, fmt.Errorf("stream: stage %s needs both edges", name)
	}
	return &Stage{name: name, handler: h, in: in, out: out}, nil
}

// Name returns the stage name.
func (s *Stage) Name() string { return s.name }

// Metrics exposes the stage's counters.
func (s *Stage) Metrics() *Metrics { return &s.metrics }

// Instrument publishes the stage's queue-wait and busy-time latency
// histograms to reg as "stage.<name>.wait" and "stage.<name>.busy".
// Must be called before the pipeline starts.
func (s *Stage) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.waitHist = reg.Histogram("stage." + s.name + ".wait")
	s.busyHist = reg.Histogram("stage." + s.name + ".busy")
	s.liveBusy = reg.LiveHistogram("stage." + s.name + ".busy")
}

// run dispatches messages until the input edge closes or ctx is
// cancelled. A handler error converts the message into an errored one
// that keeps flowing so the submitter sees the failure; the stage keeps
// serving subsequent requests (fault containment).
func (s *Stage) run(ctx context.Context) error {
	for {
		m, err := s.in.Recv(ctx)
		if err != nil {
			if errors.Is(err, ErrEdgeClosed) || errors.Is(err, context.Canceled) {
				return s.out.CloseSend()
			}
			return fmt.Errorf("stream: stage %s recv: %w", s.name, err)
		}
		var wait time.Duration
		if !m.Enqueued.IsZero() {
			wait = time.Since(m.Enqueued)
		}
		var next *Message
		var busy time.Duration
		if m.Err != "" {
			// Pass failures through untouched. Their transit time stays
			// out of WaitNanos/the histograms so error traffic does not
			// skew the per-stage latency profile of real work.
			next = m
		} else {
			s.metrics.WaitNanos.Add(wait.Nanoseconds())
			if s.waitHist != nil {
				s.waitHist.Observe(wait)
			}
			start := time.Now()
			var out *Message
			var perr error
			// Label the handler's execution for continuous profiling: CPU
			// samples taken while this stage works a message carry the stage
			// name (and the request's trace ID when traced), so a pprof
			// capture splits time by stage without guessing from stacks.
			labels := []string{"stage", s.name}
			if m.Trace != nil && m.Trace.ID != "" {
				labels = append(labels, "trace", m.Trace.ID)
			}
			pprof.Do(ctx, pprof.Labels(labels...), func(ctx context.Context) {
				out, perr = s.process(ctx, m)
			})
			busy = time.Since(start)
			s.metrics.BusyNanos.Add(busy.Nanoseconds())
			if s.busyHist != nil {
				s.busyHist.Observe(busy)
			}
			if s.liveBusy != nil {
				s.liveBusy.Observe(busy)
			}
			if perr != nil {
				s.metrics.Errors.Add(1)
				next = &Message{
					Seq:           m.Seq,
					Err:           fmt.Sprintf("stage %s: %v", s.name, perr),
					FailedStage:   s.name,
					FailedPayload: m.Payload,
				}
			} else {
				s.metrics.Processed.Add(1)
				next = out
				next.Seq = m.Seq
			}
		}
		if m.Trace != nil {
			next.Trace = m.Trace
			next.Trace.Spans = append(next.Trace.Spans, Span{Stage: s.name, Wait: wait, Busy: busy})
		}
		next.Enqueued = time.Now()
		if err := s.out.Send(ctx, next); err != nil {
			if errors.Is(err, context.Canceled) {
				return nil
			}
			return fmt.Errorf("stream: stage %s send: %w", s.name, err)
		}
	}
}

// process invokes the handler with panic containment: a panicking
// handler fails only the current request (surfaced as its error), and
// the stage keeps serving subsequent requests — the fault-containment
// behaviour the AF-Stream substrate provides in the paper's prototype.
func (s *Stage) process(ctx context.Context, m *Message) (out *Message, err error) {
	defer func() {
		if r := recover(); r != nil {
			out = nil
			err = fmt.Errorf("handler panic: %v", r)
		}
	}()
	return s.handler.Process(ctx, m)
}

// Pipeline is an ordered chain of stages fed by Submit and drained by
// Results.
type Pipeline struct {
	stages []*Stage
	first  Edge
	last   Edge
	seq    atomic.Uint64

	mu      sync.Mutex
	started bool
	done    chan struct{}
	runErr  error
}

// NewPipeline chains handlers with fresh in-process edges of the given
// buffer depth. For custom (e.g. TCP) edges assemble stages manually and
// use Assemble.
func NewPipeline(buffer int, handlers ...Handler) (*Pipeline, error) {
	if len(handlers) == 0 {
		return nil, errors.New("stream: pipeline needs at least one stage")
	}
	edges := make([]Edge, len(handlers)+1)
	for i := range edges {
		edges[i] = NewChannelEdge(buffer)
	}
	stages := make([]*Stage, len(handlers))
	for i, h := range handlers {
		st, err := NewStage(h.Name(), h, edges[i], edges[i+1])
		if err != nil {
			return nil, err
		}
		stages[i] = st
	}
	return Assemble(stages, edges[0], edges[len(edges)-1])
}

// Assemble builds a pipeline from externally wired stages. first is the
// edge Submit writes to; last is the edge Results drains.
func Assemble(stages []*Stage, first, last Edge) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, errors.New("stream: no stages")
	}
	if first == nil || last == nil {
		return nil, errors.New("stream: pipeline needs boundary edges")
	}
	return &Pipeline{stages: stages, first: first, last: last, done: make(chan struct{})}, nil
}

// Start launches all stage goroutines. It returns immediately; Wait or
// Results report completion.
func (p *Pipeline) Start(ctx context.Context) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return errors.New("stream: pipeline already started")
	}
	p.started = true
	var wg sync.WaitGroup
	errCh := make(chan error, len(p.stages))
	for _, st := range p.stages {
		wg.Add(1)
		go func(st *Stage) {
			defer wg.Done()
			if err := st.run(ctx); err != nil {
				errCh <- err
			}
		}(st)
	}
	go func() {
		wg.Wait()
		close(errCh)
		for err := range errCh {
			if err != nil && p.runErr == nil {
				p.runErr = err
			}
		}
		close(p.done)
	}()
	return nil
}

// Submit enqueues a payload as the next request and returns its sequence
// number. Every submitted message carries a fresh Trace that stages
// append their spans to.
func (p *Pipeline) Submit(ctx context.Context, payload any) (uint64, error) {
	seq := p.Reserve()
	if err := p.SubmitReserved(ctx, seq, payload); err != nil {
		return 0, err
	}
	return seq, nil
}

// Reserve allocates the next sequence number without enqueuing anything.
// Completion routers (see Dispatcher) reserve first so they can register
// a waiter for the sequence before the message can possibly complete.
func (p *Pipeline) Reserve() uint64 { return p.seq.Add(1) - 1 }

// SubmitReserved enqueues a payload under a previously Reserved sequence
// number. The attached Trace carries a fresh distributed-tracing ID.
func (p *Pipeline) SubmitReserved(ctx context.Context, seq uint64, payload any) error {
	m := &Message{Seq: seq, Payload: payload, Enqueued: time.Now(), Trace: &Trace{ID: obs.NewTraceID()}}
	return p.first.Send(ctx, m)
}

// Close signals that no more requests will be submitted; stages drain and
// shut down in order.
func (p *Pipeline) Close() error { return p.first.CloseSend() }

// Recv returns the next completed message (possibly carrying an Err).
func (p *Pipeline) Recv(ctx context.Context) (*Message, error) {
	return p.last.Recv(ctx)
}

// Wait blocks until all stages have exited and returns the first stage
// error, if any.
func (p *Pipeline) Wait() error {
	<-p.done
	return p.runErr
}

// Stages exposes the pipeline's stages for metrics inspection.
func (p *Pipeline) Stages() []*Stage { return p.stages }

// StageSnapshot pairs one stage's counters with its input queue state.
type StageSnapshot struct {
	Stage string
	MetricsSnapshot
	// QueueDepth/QueueCap describe the stage's input edge when it is an
	// in-process channel edge (both zero otherwise).
	QueueDepth int
	QueueCap   int
}

// Snapshot returns every stage's metrics and queue depth in pipeline
// order — one call for ppbench tables and the metrics endpoint alike.
func (p *Pipeline) Snapshot() []StageSnapshot {
	out := make([]StageSnapshot, len(p.stages))
	for i, st := range p.stages {
		out[i] = StageSnapshot{Stage: st.name, MetricsSnapshot: st.metrics.Snapshot()}
		if d, ok := st.in.(depthReporter); ok {
			out[i].QueueDepth, out[i].QueueCap = d.Depth()
		}
	}
	return out
}

// Instrument publishes the pipeline's stage latency histograms and
// queue-depth gauges to reg. Call before Start; histograms accumulate
// across the pipeline's lifetime and snapshot as p50/p95/p99.
func (p *Pipeline) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for _, st := range p.stages {
		st.Instrument(reg)
		if d, ok := st.in.(depthReporter); ok {
			d := d
			reg.GaugeFunc("edge."+st.name+".in.depth", func() int64 {
				n, _ := d.Depth()
				return int64(n)
			})
		}
	}
	if d, ok := p.last.(depthReporter); ok {
		reg.GaugeFunc("edge.out.depth", func() int64 {
			n, _ := d.Depth()
			return int64(n)
		})
	}
}
