package stream

import (
	"context"
	"strings"
	"testing"
)

// TestPanicContainment verifies that a panicking handler fails only its
// request: the stage survives and keeps serving the stream.
func TestPanicContainment(t *testing.T) {
	h := HandlerFunc{StageName: "panicky", Fn: func(_ context.Context, m *Message) (*Message, error) {
		if m.Payload.(int) == 2 {
			panic("boom on request 2")
		}
		return m, nil
	}}
	p, err := NewPipeline(2, h)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; i < 5; i++ {
			p.Submit(ctx, i)
		}
		p.Close()
	}()
	var failed, ok int
	for i := 0; i < 5; i++ {
		m, err := p.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Err != "" {
			failed++
			if !strings.Contains(m.Err, "panic") || !strings.Contains(m.Err, "boom") {
				t.Errorf("panic cause lost: %q", m.Err)
			}
		} else {
			ok++
		}
	}
	if failed != 1 || ok != 4 {
		t.Errorf("failed=%d ok=%d, want 1/4 — panic not contained to its request", failed, ok)
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("pipeline died from a handler panic: %v", err)
	}
}
