package stream

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"ppstream/internal/obs"
)

// ErrEdgeClosed is returned by Recv once the sender has closed the edge
// and all buffered messages are drained.
var ErrEdgeClosed = errors.New("stream: edge closed")

// Edge is a one-directional message link between stages. In-process edges
// are channels; TCP edges carry gob frames between servers.
type Edge interface {
	// Send delivers a message, blocking while the edge is full.
	Send(ctx context.Context, m *Message) error
	// Recv returns the next message, blocking until one arrives, the
	// sender closes (ErrEdgeClosed), or ctx is cancelled.
	Recv(ctx context.Context) (*Message, error)
	// CloseSend signals end-of-stream to the receiver. Idempotent.
	CloseSend() error
}

// channelEdge is the in-process edge: a bounded channel.
type channelEdge struct {
	ch        chan *Message
	closeOnce sync.Once
}

// NewChannelEdge creates an in-process edge with the given buffer depth
// (minimum 1). The bound provides back-pressure between pipeline stages.
func NewChannelEdge(buffer int) Edge {
	if buffer < 1 {
		buffer = 1
	}
	return &channelEdge{ch: make(chan *Message, buffer)}
}

func (e *channelEdge) Send(ctx context.Context, m *Message) error {
	select {
	case e.ch <- m:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (e *channelEdge) Recv(ctx context.Context) (*Message, error) {
	select {
	case m, ok := <-e.ch:
		if !ok {
			return nil, ErrEdgeClosed
		}
		return m, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (e *channelEdge) CloseSend() error {
	e.closeOnce.Do(func() { close(e.ch) })
	return nil
}

// depthReporter is the optional interface edges implement to expose
// their queue occupancy for gauges (see Pipeline.Instrument).
type depthReporter interface {
	// Depth returns the current queued message count and the capacity.
	Depth() (int, int)
}

// Depth reports the channel edge's occupancy and capacity.
func (e *channelEdge) Depth() (int, int) { return len(e.ch), cap(e.ch) }

// wireFrame is the gob envelope for TCP edges. Close frames carry no
// payload. The trace rides along so distributed pipelines keep the
// per-stage breakdown, and failure metadata (FailedStage/FailedPayload)
// survives the hop so a downstream submitter can diagnose errors raised
// on the remote side. New fields are gob-compatible in both directions:
// older peers ignore them and leave them zero.
type wireFrame struct {
	Seq           uint64
	Err           string
	ErrCode       int
	Close         bool
	Payload       any
	Trace         *Trace
	FailedStage   string
	FailedPayload any
}

// tcpEdge carries messages over a TCP connection using gob encoding.
// Payload concrete types must be registered with gob (RegisterWireType).
type tcpEdge struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	sendMu    sync.Mutex
	closeOnce sync.Once
	closeErr  error

	// Optional obs instrumentation (see NewInstrumentedTCPEdge).
	framesSent *obs.Counter
	framesRecv *obs.Counter
}

// RegisterWireType registers a payload type for TCP transport. Call once
// per concrete payload type before dialing/listening.
func RegisterWireType(v any) { gob.Register(v) }

// NewTCPEdge wraps an established connection as an Edge. The caller is
// responsible for pairing one sender and one receiver per connection.
func NewTCPEdge(conn net.Conn) Edge {
	return &tcpEdge{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// countingConn wraps a net.Conn, publishing transferred byte counts.
type countingConn struct {
	net.Conn
	sent, recv *obs.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.recv.Add(uint64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.sent.Add(uint64(n))
	}
	return n, err
}

// NewInstrumentedTCPEdge wraps conn as a TCP edge that publishes wire
// counters to reg: "<prefix>.bytes_sent", "<prefix>.bytes_recv",
// "<prefix>.frames_sent", and "<prefix>.frames_recv". Byte counts cover
// the gob stream including close frames; frame counts cover messages.
// Multiple edges may share a prefix to aggregate (e.g. all sessions of
// one server under "tcp").
func NewInstrumentedTCPEdge(conn net.Conn, reg *obs.Registry, prefix string) Edge {
	if reg == nil {
		return NewTCPEdge(conn)
	}
	cc := &countingConn{
		Conn: conn,
		sent: reg.Counter(prefix + ".bytes_sent"),
		recv: reg.Counter(prefix + ".bytes_recv"),
	}
	e := NewTCPEdge(cc).(*tcpEdge)
	e.framesSent = reg.Counter(prefix + ".frames_sent")
	e.framesRecv = reg.Counter(prefix + ".frames_recv")
	return e
}

// DialEdge connects to a listening edge.
func DialEdge(addr string) (Edge, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream: dialing %s: %w", addr, err)
	}
	return NewTCPEdge(conn), nil
}

// ListenEdge accepts exactly one connection on addr and wraps it as an
// Edge. It returns the bound address (useful with ":0") via the returned
// listener-address string.
func ListenEdge(addr string) (Edge, string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("stream: listening on %s: %w", addr, err)
	}
	ch := make(chan acceptResult, 1)
	go func() {
		conn, err := l.Accept()
		l.Close()
		if err != nil {
			ch <- acceptResult{nil, err}
			return
		}
		ch <- acceptResult{NewTCPEdge(conn), nil}
	}()
	return &pendingEdge{ch: ch}, l.Addr().String(), nil
}

type acceptResult struct {
	edge Edge
	err  error
}

// pendingEdge defers to the accepted TCP edge once the peer connects.
type pendingEdge struct {
	ch   chan acceptResult
	once sync.Once
	edge Edge
	err  error
}

// resolve waits for the accept result exactly once. sync.Once (rather
// than a mutex held across the channel receive) means concurrent
// resolvers park on the Once's internal gate, not on a lock that would
// couple every later Send/Recv to the accept latency; the Once also
// publishes edge/err with a happens-before edge for every caller.
func (p *pendingEdge) resolve() (Edge, error) {
	p.once.Do(func() {
		r := <-p.ch
		p.edge, p.err = r.edge, r.err
	})
	return p.edge, p.err
}

func (p *pendingEdge) Send(ctx context.Context, m *Message) error {
	e, err := p.resolve()
	if err != nil {
		return err
	}
	return e.Send(ctx, m)
}

func (p *pendingEdge) Recv(ctx context.Context) (*Message, error) {
	e, err := p.resolve()
	if err != nil {
		return nil, err
	}
	return e.Recv(ctx)
}

func (p *pendingEdge) CloseSend() error {
	e, err := p.resolve()
	if err != nil {
		return err
	}
	return e.CloseSend()
}

func (e *tcpEdge) Send(ctx context.Context, m *Message) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	e.sendMu.Lock()
	defer e.sendMu.Unlock()
	frame := wireFrame{
		Seq: m.Seq, Err: m.Err, ErrCode: m.ErrCode, Payload: m.Payload, Trace: m.Trace,
		FailedStage: m.FailedStage, FailedPayload: m.FailedPayload,
	}
	//pplint:ignore lockscope sendMu exists precisely to serialize whole gob frames onto the shared encoder; holding it across exactly one Encode is the framing invariant, and no other lock nests under it
	if err := e.enc.Encode(&frame); err != nil {
		return fmt.Errorf("stream: tcp send: %w", err)
	}
	if e.framesSent != nil {
		e.framesSent.Inc()
	}
	return nil
}

func (e *tcpEdge) Recv(ctx context.Context) (*Message, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var frame wireFrame
	if err := e.dec.Decode(&frame); err != nil {
		return nil, fmt.Errorf("stream: tcp recv: %w", err)
	}
	if frame.Close {
		return nil, ErrEdgeClosed
	}
	if e.framesRecv != nil {
		e.framesRecv.Inc()
	}
	return &Message{
		Seq: frame.Seq, Err: frame.Err, ErrCode: frame.ErrCode, Payload: frame.Payload, Trace: frame.Trace,
		FailedStage: frame.FailedStage, FailedPayload: frame.FailedPayload,
	}, nil
}

func (e *tcpEdge) CloseSend() error {
	e.closeOnce.Do(func() {
		e.sendMu.Lock()
		defer e.sendMu.Unlock()
		//pplint:ignore lockscope the close frame rides the same one-frame-per-sendMu-hold invariant as Send; see above
		if err := e.enc.Encode(&wireFrame{Close: true}); err != nil {
			e.closeErr = err
		}
	})
	return e.closeErr
}
