package scaling

import (
	"math"
	"math/rand"
	"testing"

	"ppstream/internal/nn"
	"ppstream/internal/tensor"
)

func testNet(t *testing.T) *nn.Network {
	r := rand.New(rand.NewSource(81))
	net, err := nn.NewNetwork("scale-test", tensor.Shape{3},
		nn.NewFC("fc1", 3, 5, r),
		nn.NewReLU("relu"),
		nn.NewFC("fc2", 5, 2, r),
		nn.NewSoftMax("sm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func selfLabelled(t *testing.T, net *nn.Network, n int) ([]*tensor.Dense, []int) {
	t.Helper()
	r := rand.New(rand.NewSource(82))
	xs := make([]*tensor.Dense, n)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		x := tensor.Zeros(3)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()
		}
		pred, err := net.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		xs[i], ys[i] = x, pred
	}
	return xs, ys
}

func TestPow10(t *testing.T) {
	want := []int64{1, 10, 100, 1000, 10000, 100000, 1000000}
	for f, w := range want {
		if Pow10(f) != w {
			t.Errorf("Pow10(%d) = %d", f, Pow10(f))
		}
	}
}

func TestRoundParams(t *testing.T) {
	net := testNet(t)
	fc := net.Layers[0].(*nn.FC)
	fc.W.SetFlat(0, 0.123456789)
	rounded, err := RoundParams(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := rounded.Layers[0].(*nn.FC).W.AtFlat(0)
	if math.Abs(got-0.12) > 1e-12 {
		t.Errorf("rounded to %v, want 0.12", got)
	}
	// original untouched
	if fc.W.AtFlat(0) != 0.123456789 {
		t.Error("RoundParams mutated the original network")
	}
	if _, err := RoundParams(net, -1); err == nil {
		t.Error("negative places accepted")
	}
	// f=0 rounds to integers
	r0, _ := RoundParams(net, 0)
	for _, p := range r0.Params() {
		for _, v := range p.Data() {
			if v != math.Round(v) {
				t.Fatalf("f=0 left non-integer %v", v)
			}
		}
	}
}

func TestRoundParamsCoversBatchNormStats(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	bn := nn.NewBatchNorm("bn", 2)
	bn.Mean = tensor.MustFromSlice([]float64{0.12345, 1.98765}, 2)
	net, err := nn.NewNetwork("bn-net", tensor.Shape{2},
		nn.NewFC("fc", 2, 2, r), bn, nn.NewReLU("relu"),
		nn.NewFC("fc2", 2, 2, r), nn.NewSoftMax("sm"))
	if err != nil {
		t.Fatal(err)
	}
	rounded, err := RoundParams(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := rounded.Layers[1].(*nn.BatchNorm).Mean.AtFlat(0)
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("BN mean rounded to %v, want 0.1", got)
	}
}

func TestSelectFactorConverges(t *testing.T) {
	net := testNet(t)
	xs, ys := selfLabelled(t, net, 30)
	res, err := SelectFactor(net, xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Labels are the model's own predictions: original accuracy is 1.
	if res.OriginalAccuracy != 1 {
		t.Errorf("original accuracy %v", res.OriginalAccuracy)
	}
	if res.Exponent < 0 || res.Exponent > MaxExponent {
		t.Errorf("exponent %d out of range", res.Exponent)
	}
	if res.Factor != Pow10(res.Exponent) {
		t.Errorf("factor %d != 10^%d", res.Factor, res.Exponent)
	}
	// At the selected factor, accuracy must be within the threshold (or
	// f hit the cap).
	if res.Exponent < MaxExponent && math.Abs(res.OriginalAccuracy-res.ScaledAccuracy) >= DefaultThreshold {
		t.Errorf("selected factor misses threshold: %v vs %v", res.ScaledAccuracy, res.OriginalAccuracy)
	}
	if len(res.Sweep) != res.Exponent+1 {
		t.Errorf("sweep has %d entries for exponent %d", len(res.Sweep), res.Exponent)
	}
}

func TestSweepMonotoneTail(t *testing.T) {
	net := testNet(t)
	xs, ys := selfLabelled(t, net, 25)
	sweep, err := Sweep(net, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != MaxExponent+1 {
		t.Fatalf("sweep length %d", len(sweep))
	}
	// The last entries (high precision) must reach the original accuracy.
	if sweep[MaxExponent] != 1 {
		t.Errorf("accuracy at 10^6 = %v, want 1 (self-labelled)", sweep[MaxExponent])
	}
}

func TestSelectFactorErrors(t *testing.T) {
	net := testNet(t)
	if _, err := SelectFactor(net, nil, nil, 0); err == nil {
		t.Error("empty selection set accepted")
	}
}
