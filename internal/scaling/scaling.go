// Package scaling implements PP-Stream's parameter scaling (paper
// Section IV-A): Paillier's cryptosystem works on integers, so
// floating-point model parameters are multiplied by a scaling factor
// F = 10^f and rounded. The factor-selection algorithm balances accuracy
// (larger F preserves more precision) against cost (larger scaled weights
// make the homomorphic scalar multiplications more expensive).
package scaling

import (
	"fmt"
	"math"

	"ppstream/internal/nn"
	"ppstream/internal/tensor"
)

// MaxExponent is the paper's cap on f: factors beyond 10^6 operate on
// very large numbers for no accuracy benefit.
const MaxExponent = 6

// DefaultThreshold is the paper's accuracy-difference threshold (0.01%).
const DefaultThreshold = 0.0001

// RoundParams returns a copy of the network whose parameters are rounded
// to f decimal places — the "approximate model" of the paper's Step 2.
// The network still computes in float64; only parameter precision drops.
func RoundParams(n *nn.Network, f int) (*nn.Network, error) {
	if f < 0 {
		return nil, fmt.Errorf("scaling: negative decimal places %d", f)
	}
	factor := math.Pow(10, float64(f))
	clone := n.Clone()
	for _, p := range clone.Params() {
		d := p.Data()
		for i := range d {
			d[i] = math.Round(d[i]*factor) / factor
		}
	}
	// Frozen batch-norm statistics are model parameters too: they feed
	// the affine transform the model provider evaluates.
	for _, l := range clone.Layers {
		if bn, ok := l.(*nn.BatchNorm); ok {
			for _, p := range []*tensor.Dense{bn.Mean, bn.Var} {
				d := p.Data()
				for i := range d {
					d[i] = math.Round(d[i]*factor) / factor
				}
			}
		}
	}
	return clone, nil
}

// Result reports the outcome of factor selection.
type Result struct {
	// Exponent is the selected f with F = 10^f.
	Exponent int
	// Factor is 10^Exponent.
	Factor int64
	// OriginalAccuracy is the unscaled model's accuracy on the
	// selection set (the paper's A).
	OriginalAccuracy float64
	// ScaledAccuracy is the rounded model's accuracy at the selected
	// factor (the paper's A').
	ScaledAccuracy float64
	// Sweep records accuracy at every exponent tried, for Tables IV/V.
	Sweep []float64
}

// SelectFactor runs the paper's three-step selection: measure the
// original accuracy A on the training set, then increase f from 0 until
// the rounded model's accuracy A' is within threshold of A or f hits
// MaxExponent.
func SelectFactor(n *nn.Network, xs []*tensor.Dense, ys []int, threshold float64) (*Result, error) {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	orig, err := n.Accuracy(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("scaling: original accuracy: %w", err)
	}
	res := &Result{OriginalAccuracy: orig}
	for f := 0; ; f++ {
		rounded, err := RoundParams(n, f)
		if err != nil {
			return nil, err
		}
		acc, err := rounded.Accuracy(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("scaling: accuracy at f=%d: %w", f, err)
		}
		res.Sweep = append(res.Sweep, acc)
		if math.Abs(orig-acc) < threshold || f == MaxExponent {
			res.Exponent = f
			res.Factor = pow10(f)
			res.ScaledAccuracy = acc
			return res, nil
		}
	}
}

// Sweep evaluates the rounded model's accuracy for every exponent
// 0..MaxExponent on the given set — the data behind Tables IV and V.
func Sweep(n *nn.Network, xs []*tensor.Dense, ys []int) ([]float64, error) {
	out := make([]float64, MaxExponent+1)
	for f := 0; f <= MaxExponent; f++ {
		rounded, err := RoundParams(n, f)
		if err != nil {
			return nil, err
		}
		acc, err := rounded.Accuracy(xs, ys)
		if err != nil {
			return nil, err
		}
		out[f] = acc
	}
	return out, nil
}

func pow10(f int) int64 {
	v := int64(1)
	for i := 0; i < f; i++ {
		v *= 10
	}
	return v
}

// Pow10 exposes the integer power of ten used for a given exponent.
func Pow10(f int) int64 { return pow10(f) }
