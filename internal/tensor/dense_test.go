package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddSubMulScale(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float64{10, 20, 30, 40}, 2, 2)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 1) != 44 {
		t.Errorf("Add wrong: %v", sum.Data())
	}
	diff, _ := Sub(b, a)
	if diff.At(0, 0) != 9 {
		t.Errorf("Sub wrong: %v", diff.Data())
	}
	prod, _ := Mul(a, b)
	if prod.At(0, 1) != 40 {
		t.Errorf("Mul wrong: %v", prod.Data())
	}
	sc := Scale(a, 0.5)
	if sc.At(1, 0) != 1.5 {
		t.Errorf("Scale wrong: %v", sc.Data())
	}
}

func TestDot(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3}, 3)
	b := MustFromSlice([]float64{4, 5, 6}, 3)
	got, err := Dot(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	c := MustFromSlice([]float64{1}, 1)
	if _, err := Dot(a, c); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestMatVec(t *testing.T) {
	w := MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := MustFromSlice([]float64{1, 0, -1}, 3)
	b := MustFromSlice([]float64{10, 20}, 2)
	y, err := MatVec(w, x, b)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0) != 1*1+2*0+3*(-1)+10 {
		t.Errorf("y[0] = %v", y.At(0))
	}
	if y.At(1) != 4*1+5*0+6*(-1)+20 {
		t.Errorf("y[1] = %v", y.At(1))
	}
	// nil bias allowed
	y2, err := MatVec(w, x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if y2.At(0) != -2 {
		t.Errorf("nil-bias y[0] = %v", y2.At(0))
	}
	if _, err := MatVec(x, x, nil); err == nil {
		t.Error("rank-1 weight accepted")
	}
	if _, err := MatVec(w, b, nil); err == nil {
		t.Error("input size mismatch accepted")
	}
}

func TestMatMul(t *testing.T) {
	a := MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := MustFromSlice([]float64{5, 6, 7, 8}, 2, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.AtFlat(i) != v {
			t.Fatalf("MatMul = %v, want %v", c.Data(), want)
		}
	}
	if _, err := MatMul(a, MustFromSlice([]float64{1, 2, 3}, 3, 1)); err == nil {
		t.Error("inner mismatch accepted")
	}
}

func TestConvParamsValidate(t *testing.T) {
	good := ConvParams{InC: 1, InH: 3, InW: 3, OutC: 1, KH: 2, KW: 2, Stride: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []ConvParams{
		{InC: 0, InH: 3, InW: 3, OutC: 1, KH: 2, KW: 2, Stride: 1},
		{InC: 1, InH: 3, InW: 3, OutC: 0, KH: 2, KW: 2, Stride: 1},
		{InC: 1, InH: 3, InW: 3, OutC: 1, KH: 0, KW: 2, Stride: 1},
		{InC: 1, InH: 3, InW: 3, OutC: 1, KH: 2, KW: 2, Stride: 0},
		{InC: 1, InH: 3, InW: 3, OutC: 1, KH: 2, KW: 2, Stride: 1, Pad: -1},
		{InC: 1, InH: 1, InW: 1, OutC: 1, KH: 2, KW: 2, Stride: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

// TestConv2DPaperExample reproduces the paper's Figure 5(a): a 3×3 input,
// 2×2 filter, stride 1, no padding, yielding a 2×2 output where each
// element depends on one 2×2 sub-tensor.
func TestConv2DPaperExample(t *testing.T) {
	x := MustFromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	w := MustFromSlice([]float64{1, 0, 0, 1}, 1, 1, 2, 2) // identity-corner filter
	p := ConvParams{InC: 1, InH: 3, InW: 3, OutC: 1, KH: 2, KW: 2, Stride: 1}
	out, err := Conv2D(x, w, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1 + 5, 2 + 6, 4 + 8, 5 + 9}
	for i, v := range want {
		if out.AtFlat(i) != v {
			t.Fatalf("Conv2D = %v, want %v", out.Data(), want)
		}
	}
}

func TestConv2DWithPaddingAndBias(t *testing.T) {
	x := MustFromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	w := MustFromSlice([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1}, 1, 1, 3, 3)
	bias := MustFromSlice([]float64{100}, 1)
	p := ConvParams{InC: 1, InH: 2, InW: 2, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	out, err := Conv2D(x, w, bias, p)
	if err != nil {
		t.Fatal(err)
	}
	// centre position sums the whole input.
	if out.Shape()[1] != 2 || out.Shape()[2] != 2 {
		t.Fatalf("output shape %v", out.Shape())
	}
	if out.At(0, 0, 0) != 1+2+3+4+100 {
		t.Errorf("padded conv wrong at (0,0): %v", out.At(0, 0, 0))
	}
}

func TestIm2ColShapes(t *testing.T) {
	x := Zeros(2, 4, 4)
	p := ConvParams{InC: 2, InH: 4, InW: 4, OutC: 3, KH: 2, KW: 2, Stride: 2}
	cols, err := Im2Col(x, p)
	if err != nil {
		t.Fatal(err)
	}
	if !cols.Shape().Equal(Shape{4, 8}) {
		t.Errorf("Im2Col shape = %v, want [4 8]", cols.Shape())
	}
	if _, err := Im2Col(Zeros(1, 4, 4), p); err == nil {
		t.Error("shape mismatch accepted")
	}
}

// Property: Conv2D via Im2Col agrees with direct nested-loop convolution
// on random inputs.
func TestConv2DMatchesDirectProperty(t *testing.T) {
	f := func(seedVals []float64) bool {
		p := ConvParams{InC: 2, InH: 5, InW: 5, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
		x := Zeros(p.InC, p.InH, p.InW)
		w := Zeros(p.OutC, p.InC, p.KH, p.KW)
		fillFrom(x.Data(), seedVals)
		fillFrom(w.Data(), seedVals)
		got, err := Conv2D(x, w, nil, p)
		if err != nil {
			return false
		}
		want := directConv(x, w, p)
		return AllClose(got, want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func fillFrom(dst, src []float64) {
	for i := range dst {
		if len(src) == 0 {
			dst[i] = float64(i%7) - 3
			continue
		}
		v := src[i%len(src)]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 1
		}
		dst[i] = math.Mod(v, 10)
	}
}

func directConv(x, w *Dense, p ConvParams) *Dense {
	oh, ow := p.OutH(), p.OutW()
	out := Zeros(p.OutC, oh, ow)
	for f := 0; f < p.OutC; f++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var sum float64
				for c := 0; c < p.InC; c++ {
					for ky := 0; ky < p.KH; ky++ {
						for kx := 0; kx < p.KW; kx++ {
							iy := oy*p.Stride + ky - p.Pad
							ix := ox*p.Stride + kx - p.Pad
							if iy < 0 || iy >= p.InH || ix < 0 || ix >= p.InW {
								continue
							}
							sum += w.At(f, c, ky, kx) * x.At(c, iy, ix)
						}
					}
				}
				out.Set(sum, f, oy, ox)
			}
		}
	}
	return out
}

func TestMaxPool2D(t *testing.T) {
	x := MustFromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out, err := MaxPool2D(x, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{6, 8, 14, 16}
	for i, v := range want {
		if out.AtFlat(i) != v {
			t.Fatalf("MaxPool2D = %v, want %v", out.Data(), want)
		}
	}
	if _, err := MaxPool2D(MustFromSlice([]float64{1, 2}, 2), 2, 2); err == nil {
		t.Error("rank-1 input accepted")
	}
	if _, err := MaxPool2D(x, 0, 2); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := MaxPool2D(x, 5, 1); err == nil {
		t.Error("oversized window accepted")
	}
}

func TestArgMax(t *testing.T) {
	a := MustFromSlice([]float64{0.1, 0.9, 0.3}, 3)
	if ArgMax(a) != 1 {
		t.Errorf("ArgMax = %d", ArgMax(a))
	}
	ties := MustFromSlice([]float64{5, 5}, 2)
	if ArgMax(ties) != 0 {
		t.Errorf("tie should resolve to lowest index, got %d", ArgMax(ties))
	}
}

func TestAllClose(t *testing.T) {
	a := MustFromSlice([]float64{1, 2}, 2)
	b := MustFromSlice([]float64{1.0001, 2}, 2)
	if !AllClose(a, b, 1e-3) {
		t.Error("close tensors reported far")
	}
	if AllClose(a, b, 1e-6) {
		t.Error("far tensors reported close")
	}
	c := MustFromSlice([]float64{1, 2}, 1, 2)
	if AllClose(a, c, 1) {
		t.Error("different shapes reported close")
	}
}
