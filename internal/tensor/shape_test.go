package tensor

import (
	"testing"
	"testing/quick"
)

func TestShapeSize(t *testing.T) {
	cases := []struct {
		shape Shape
		want  int
	}{
		{Shape{}, 1},
		{Shape{5}, 5},
		{Shape{3, 28, 28}, 2352},
		{Shape{2, 2, 2, 2}, 16},
	}
	for _, c := range cases {
		if got := c.shape.Size(); got != c.want {
			t.Errorf("Size(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestShapeValidate(t *testing.T) {
	if err := (Shape{3, 4}).Validate(); err != nil {
		t.Errorf("valid shape rejected: %v", err)
	}
	if err := (Shape{3, 0}).Validate(); err == nil {
		t.Error("zero dimension accepted")
	}
	if err := (Shape{-1}).Validate(); err == nil {
		t.Error("negative dimension accepted")
	}
}

func TestShapeEqual(t *testing.T) {
	if !(Shape{2, 3}).Equal(Shape{2, 3}) {
		t.Error("equal shapes reported unequal")
	}
	if (Shape{2, 3}).Equal(Shape{3, 2}) {
		t.Error("unequal shapes reported equal")
	}
	if (Shape{2, 3}).Equal(Shape{2, 3, 1}) {
		t.Error("different ranks reported equal")
	}
}

func TestShapeStrides(t *testing.T) {
	s := Shape{2, 3, 4}
	strides := s.Strides()
	want := []int{12, 4, 1}
	for i := range want {
		if strides[i] != want[i] {
			t.Fatalf("Strides(%v) = %v, want %v", s, strides, want)
		}
	}
}

func TestShapeOffsetIndexRoundTrip(t *testing.T) {
	s := Shape{3, 4, 5}
	for off := 0; off < s.Size(); off++ {
		idx := s.Index(off)
		if got := s.Offset(idx...); got != off {
			t.Fatalf("Offset(Index(%d)) = %d", off, got)
		}
	}
}

func TestShapeOffsetPanics(t *testing.T) {
	s := Shape{2, 2}
	assertPanics(t, "wrong rank", func() { s.Offset(1) })
	assertPanics(t, "out of bounds", func() { s.Offset(0, 2) })
	assertPanics(t, "negative", func() { s.Offset(-1, 0) })
}

func TestShapeIndexPanics(t *testing.T) {
	s := Shape{2, 2}
	assertPanics(t, "offset too big", func() { s.Index(4) })
	assertPanics(t, "negative offset", func() { s.Index(-1) })
}

func TestShapeString(t *testing.T) {
	if got := (Shape{3, 28, 28}).String(); got != "[3 28 28]" {
		t.Errorf("String() = %q", got)
	}
}

// Property: for random small shapes, Index and Offset are inverse
// bijections over the full flat range.
func TestShapeOffsetIndexProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		s := Shape{int(a%4) + 1, int(b%4) + 1, int(c%4) + 1}
		seen := make(map[int]bool)
		for off := 0; off < s.Size(); off++ {
			idx := s.Index(off)
			back := s.Offset(idx...)
			if back != off || seen[back] {
				return false
			}
			seen[back] = true
		}
		return len(seen) == s.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
