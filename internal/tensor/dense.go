package tensor

import (
	"fmt"
	"math"
)

// Dense is the float64 tensor used for plaintext model parameters and
// activations.
type Dense = Tensor[float64]

// Zeros allocates a Dense tensor of the given shape filled with zeros.
func Zeros(shape ...int) *Dense { return New[float64](shape...) }

// Ones allocates a Dense tensor of the given shape filled with ones.
func Ones(shape ...int) *Dense {
	t := New[float64](shape...)
	t.Fill(1)
	return t
}

// Add returns a + b element-wise.
func Add(a, b *Dense) (*Dense, error) {
	return Zip(a, b, func(x, y float64) float64 { return x + y })
}

// Sub returns a - b element-wise.
func Sub(a, b *Dense) (*Dense, error) {
	return Zip(a, b, func(x, y float64) float64 { return x - y })
}

// Mul returns the element-wise (Hadamard) product a ⊙ b.
func Mul(a, b *Dense) (*Dense, error) {
	return Zip(a, b, func(x, y float64) float64 { return x * y })
}

// Scale returns s·a.
func Scale(a *Dense, s float64) *Dense {
	return Map(a, func(x float64) float64 { return s * x })
}

// Dot returns the inner product of two rank-1 tensors (or any two tensors
// of equal size, treated flat).
func Dot(a, b *Dense) (float64, error) {
	if a.Size() != b.Size() {
		return 0, fmt.Errorf("tensor: dot size mismatch %d vs %d", a.Size(), b.Size())
	}
	var sum float64
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		sum += ad[i] * bd[i]
	}
	return sum, nil
}

// MatVec computes y = W·x + b where W has shape [out, in], x has size in,
// and b (optional, may be nil) has size out. This is the fully-connected
// layer's linear operation, Σ_i w_i m_i + b in the paper's Eq. (3).
func MatVec(w *Dense, x *Dense, b *Dense) (*Dense, error) {
	if w.Shape().Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatVec weight must be rank 2, got %v", w.Shape())
	}
	out, in := w.Shape()[0], w.Shape()[1]
	if x.Size() != in {
		return nil, fmt.Errorf("tensor: MatVec input size %d does not match weight shape %v", x.Size(), w.Shape())
	}
	if b != nil && b.Size() != out {
		return nil, fmt.Errorf("tensor: MatVec bias size %d does not match output %d", b.Size(), out)
	}
	y := Zeros(out)
	wd, xd, yd := w.Data(), x.Data(), y.Data()
	for o := 0; o < out; o++ {
		row := wd[o*in : (o+1)*in]
		var sum float64
		for i, v := range row {
			sum += v * xd[i]
		}
		if b != nil {
			sum += b.Data()[o]
		}
		yd[o] = sum
	}
	return y, nil
}

// MatMul computes C = A·B for rank-2 tensors with shapes [m,k] and [k,n].
func MatMul(a, b *Dense) (*Dense, error) {
	if a.Shape().Rank() != 2 || b.Shape().Rank() != 2 {
		return nil, fmt.Errorf("tensor: MatMul requires rank-2 operands, got %v and %v", a.Shape(), b.Shape())
	}
	m, k := a.Shape()[0], a.Shape()[1]
	k2, n := b.Shape()[0], b.Shape()[1]
	if k != k2 {
		return nil, fmt.Errorf("tensor: MatMul inner dimension mismatch %v x %v", a.Shape(), b.Shape())
	}
	c := Zeros(m, n)
	ad, bd, cd := a.Data(), b.Data(), c.Data()
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := ad[i*k+p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			crow := cd[i*n : (i+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c, nil
}

// ConvParams describes a 2-D convolution: input [C,H,W], filters
// [F,C,KH,KW], stride, and zero padding.
type ConvParams struct {
	InC, InH, InW int // input channels, height, width
	OutC          int // number of filters
	KH, KW        int // kernel height/width
	Stride        int
	Pad           int
}

// OutH returns the output height for the convolution.
func (p ConvParams) OutH() int { return (p.InH+2*p.Pad-p.KH)/p.Stride + 1 }

// OutW returns the output width for the convolution.
func (p ConvParams) OutW() int { return (p.InW+2*p.Pad-p.KW)/p.Stride + 1 }

// Validate checks that the convolution geometry is well-formed.
func (p ConvParams) Validate() error {
	switch {
	case p.InC <= 0 || p.InH <= 0 || p.InW <= 0:
		return fmt.Errorf("tensor: conv input dims must be positive: C=%d H=%d W=%d", p.InC, p.InH, p.InW)
	case p.OutC <= 0:
		return fmt.Errorf("tensor: conv needs at least one filter, got %d", p.OutC)
	case p.KH <= 0 || p.KW <= 0:
		return fmt.Errorf("tensor: conv kernel dims must be positive: %dx%d", p.KH, p.KW)
	case p.Stride <= 0:
		return fmt.Errorf("tensor: conv stride must be positive, got %d", p.Stride)
	case p.Pad < 0:
		return fmt.Errorf("tensor: conv padding must be non-negative, got %d", p.Pad)
	case p.OutH() <= 0 || p.OutW() <= 0:
		return fmt.Errorf("tensor: conv output is empty for input %dx%d kernel %dx%d stride %d pad %d",
			p.InH, p.InW, p.KH, p.KW, p.Stride, p.Pad)
	}
	return nil
}

// Im2Col unrolls an input tensor of shape [C,H,W] into a matrix of shape
// [OutH*OutW, C*KH*KW] whose rows are the receptive fields of each output
// position. Convolution then becomes a matrix product, and — crucially for
// the paper's tensor partitioning (Section IV-D) — each output element
// depends only on one row, i.e. one input sub-tensor.
func Im2Col(x *Dense, p ConvParams) (*Dense, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	want := Shape{p.InC, p.InH, p.InW}
	if !x.Shape().Equal(want) {
		return nil, fmt.Errorf("tensor: Im2Col input shape %v does not match params %v", x.Shape(), want)
	}
	oh, ow := p.OutH(), p.OutW()
	cols := Zeros(oh*ow, p.InC*p.KH*p.KW)
	xd, cd := x.Data(), cols.Data()
	rowLen := p.InC * p.KH * p.KW
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := cd[(oy*ow+ox)*rowLen : (oy*ow+ox+1)*rowLen]
			k := 0
			for c := 0; c < p.InC; c++ {
				for ky := 0; ky < p.KH; ky++ {
					iy := oy*p.Stride + ky - p.Pad
					for kx := 0; kx < p.KW; kx++ {
						ix := ox*p.Stride + kx - p.Pad
						if iy >= 0 && iy < p.InH && ix >= 0 && ix < p.InW {
							row[k] = xd[(c*p.InH+iy)*p.InW+ix]
						}
						k++
					}
				}
			}
		}
	}
	return cols, nil
}

// Conv2D is the reference 2-D convolution. x has shape [C,H,W], w has
// shape [F,C,KH,KW], bias (optional) has size F; the result has shape
// [F,OutH,OutW].
func Conv2D(x, w, bias *Dense, p ConvParams) (*Dense, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	wantW := Shape{p.OutC, p.InC, p.KH, p.KW}
	if !w.Shape().Equal(wantW) {
		return nil, fmt.Errorf("tensor: Conv2D weight shape %v does not match params %v", w.Shape(), wantW)
	}
	if bias != nil && bias.Size() != p.OutC {
		return nil, fmt.Errorf("tensor: Conv2D bias size %d does not match filters %d", bias.Size(), p.OutC)
	}
	cols, err := Im2Col(x, p)
	if err != nil {
		return nil, err
	}
	oh, ow := p.OutH(), p.OutW()
	out := Zeros(p.OutC, oh, ow)
	rowLen := p.InC * p.KH * p.KW
	cd, wd, od := cols.Data(), w.Data(), out.Data()
	for f := 0; f < p.OutC; f++ {
		filt := wd[f*rowLen : (f+1)*rowLen]
		var b float64
		if bias != nil {
			b = bias.Data()[f]
		}
		for pos := 0; pos < oh*ow; pos++ {
			row := cd[pos*rowLen : (pos+1)*rowLen]
			sum := b
			for i, v := range filt {
				sum += v * row[i]
			}
			od[f*oh*ow+pos] = sum
		}
	}
	return out, nil
}

// MaxPool2D applies max pooling with a square window and equal stride to a
// [C,H,W] tensor. It is the non-linear down-sampling function from
// Section III-C.
func MaxPool2D(x *Dense, window, stride int) (*Dense, error) {
	if x.Shape().Rank() != 3 {
		return nil, fmt.Errorf("tensor: MaxPool2D input must be rank 3, got %v", x.Shape())
	}
	if window <= 0 || stride <= 0 {
		return nil, fmt.Errorf("tensor: MaxPool2D window/stride must be positive (window=%d stride=%d)", window, stride)
	}
	c, h, w := x.Shape()[0], x.Shape()[1], x.Shape()[2]
	oh := (h-window)/stride + 1
	ow := (w-window)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("tensor: MaxPool2D output empty for input %dx%d window %d stride %d", h, w, window, stride)
	}
	out := Zeros(c, oh, ow)
	xd, od := x.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				for ky := 0; ky < window; ky++ {
					for kx := 0; kx < window; kx++ {
						v := xd[(ch*h+oy*stride+ky)*w+ox*stride+kx]
						if v > best {
							best = v
						}
					}
				}
				od[(ch*oh+oy)*ow+ox] = best
			}
		}
	}
	return out, nil
}

// ArgMax returns the flat index of the maximum element. Ties resolve to
// the lowest index. It is used to turn SoftMax outputs into class labels.
func ArgMax(t *Dense) int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.Data() {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// AllClose reports whether two same-shaped tensors agree element-wise
// within absolute tolerance tol.
func AllClose(a, b *Dense, tol float64) bool {
	if !a.Shape().Equal(b.Shape()) {
		return false
	}
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if math.Abs(ad[i]-bd[i]) > tol {
			return false
		}
	}
	return true
}
