// Package tensor provides dense multi-dimensional arrays used throughout
// PP-Stream: plaintext float tensors, integer (scaled) tensors, and the
// element containers that Paillier ciphertext tensors build on.
//
// A tensor is a flat backing slice plus a Shape. Elements are stored in
// row-major (lexicographic) order, which is exactly the order the paper's
// obfuscation step uses when reshaping a tensor into a one-dimensional
// vector (Section III-C).
package tensor

import (
	"fmt"
	"strings"
)

// Shape describes the dimension sizes of a tensor, outermost first.
type Shape []int

// Size returns the total number of elements, i.e. the product of all
// dimension sizes. The empty shape has size 1 (a scalar).
func (s Shape) Size() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Validate reports an error if any dimension is non-positive.
func (s Shape) Validate() error {
	for i, d := range s {
		if d <= 0 {
			return fmt.Errorf("tensor: shape %v has non-positive dimension %d at axis %d", s, d, i)
		}
	}
	return nil
}

// Equal reports whether two shapes have identical rank and dimensions.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Strides returns the row-major strides for the shape: the number of flat
// elements between consecutive indices along each axis.
func (s Shape) Strides() []int {
	strides := make([]int, len(s))
	stride := 1
	for i := len(s) - 1; i >= 0; i-- {
		strides[i] = stride
		stride *= s[i]
	}
	return strides
}

// Offset converts a multi-dimensional index to a flat offset.
// It panics if the index has the wrong rank or is out of bounds, matching
// the behaviour of built-in slice indexing.
func (s Shape) Offset(idx ...int) int {
	if len(idx) != len(s) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape rank %d", len(idx), len(s)))
	}
	off := 0
	stride := 1
	for i := len(s) - 1; i >= 0; i-- {
		if idx[i] < 0 || idx[i] >= s[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, s))
		}
		off += idx[i] * stride
		stride *= s[i]
	}
	return off
}

// Index converts a flat offset back to a multi-dimensional index.
func (s Shape) Index(offset int) []int {
	if offset < 0 || offset >= s.Size() {
		panic(fmt.Sprintf("tensor: offset %d out of bounds for shape %v (size %d)", offset, s, s.Size()))
	}
	idx := make([]int, len(s))
	for i := len(s) - 1; i >= 0; i-- {
		idx[i] = offset % s[i]
		offset /= s[i]
	}
	return idx
}

// String renders the shape as, e.g., "[3 28 28]".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
