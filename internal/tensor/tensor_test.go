package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewAndAccess(t *testing.T) {
	m := New[float64](2, 3)
	m.Set(7, 1, 2)
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At(1,2) = %v, want 7", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("zero value not zero: %v", got)
	}
	if m.Size() != 6 {
		t.Errorf("Size = %d, want 6", m.Size())
	}
}

func TestFromSlice(t *testing.T) {
	if _, err := FromSlice([]int{1, 2, 3}, 2, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	ten, err := FromSlice([]int{1, 2, 3, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ten.At(1, 0) != 3 {
		t.Errorf("row-major order violated: At(1,0) = %d", ten.At(1, 0))
	}
	if _, err := FromSlice([]int{1}, 0); err == nil {
		t.Error("invalid shape accepted")
	}
}

func TestMustFromSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustFromSlice([]int{1, 2}, 3)
}

func TestReshapeSharesData(t *testing.T) {
	a := MustFromSlice([]int{1, 2, 3, 4, 5, 6}, 2, 3)
	b, err := a.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Set(99, 0, 0)
	if a.At(0, 0) != 99 {
		t.Error("reshape did not share backing data")
	}
	if _, err := a.Reshape(4, 2); err == nil {
		t.Error("size-changing reshape accepted")
	}
}

func TestFlattenOrder(t *testing.T) {
	a := MustFromSlice([]int{1, 2, 3, 4, 5, 6}, 2, 3)
	flat := a.Flatten()
	if flat.Shape().Rank() != 1 || flat.Size() != 6 {
		t.Fatalf("Flatten shape = %v", flat.Shape())
	}
	for i, want := range []int{1, 2, 3, 4, 5, 6} {
		if flat.AtFlat(i) != want {
			t.Errorf("lexicographic order violated at %d: %d", i, flat.AtFlat(i))
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromSlice([]int{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(42, 0, 0)
	if a.At(0, 0) == 42 {
		t.Error("clone shares data with original")
	}
}

func TestMapZip(t *testing.T) {
	a := MustFromSlice([]int{1, 2, 3}, 3)
	doubled := Map(a, func(x int) int { return 2 * x })
	if doubled.At(2) != 6 {
		t.Errorf("Map result wrong: %v", doubled.Data())
	}
	b := MustFromSlice([]int{10, 20, 30}, 3)
	sum, err := Zip(a, b, func(x, y int) int { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1) != 22 {
		t.Errorf("Zip result wrong: %v", sum.Data())
	}
	c := MustFromSlice([]int{1}, 1)
	if _, err := Zip(a, c, func(x, y int) int { return 0 }); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestFill(t *testing.T) {
	a := New[int](2, 2)
	a.Fill(5)
	for _, v := range a.Data() {
		if v != 5 {
			t.Fatalf("Fill left %d", v)
		}
	}
}

// Property: reshape round-trip preserves flat data exactly.
func TestReshapeRoundTripProperty(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		a := MustFromSlice(vals, len(vals))
		b, err := a.Reshape(len(vals), 1)
		if err != nil {
			return false
		}
		c, err := b.Reshape(len(vals))
		if err != nil {
			return false
		}
		for i := range vals {
			if c.AtFlat(i) != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
