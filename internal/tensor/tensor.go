package tensor

import "fmt"

// Tensor is a dense, row-major multi-dimensional array over an arbitrary
// element type. PP-Stream instantiates it with float64 (plaintext values),
// int64 (scaled integer parameters), and ciphertext pointer types.
type Tensor[T any] struct {
	shape Shape
	data  []T
}

// New allocates a zero-valued tensor with the given shape.
func New[T any](shape ...int) *Tensor[T] {
	s := Shape(shape).Clone()
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return &Tensor[T]{shape: s, data: make([]T, s.Size())}
}

// FromSlice wraps an existing flat slice in a tensor of the given shape.
// The slice is used directly (not copied); len(data) must equal the shape
// size.
func FromSlice[T any](data []T, shape ...int) (*Tensor[T], error) {
	s := Shape(shape).Clone()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(data) != s.Size() {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (size %d)", len(data), s, s.Size())
	}
	return &Tensor[T]{shape: s, data: data}, nil
}

// MustFromSlice is FromSlice but panics on error; convenient in tests and
// literals.
func MustFromSlice[T any](data []T, shape ...int) *Tensor[T] {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns the tensor's shape. The returned slice must not be
// modified.
func (t *Tensor[T]) Shape() Shape { return t.shape }

// Size returns the total number of elements.
func (t *Tensor[T]) Size() int { return len(t.data) }

// Data returns the flat backing slice in row-major order. Mutating it
// mutates the tensor.
func (t *Tensor[T]) Data() []T { return t.data }

// At returns the element at the given multi-dimensional index.
func (t *Tensor[T]) At(idx ...int) T { return t.data[t.shape.Offset(idx...)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor[T]) Set(v T, idx ...int) { t.data[t.shape.Offset(idx...)] = v }

// AtFlat returns the element at a flat row-major offset.
func (t *Tensor[T]) AtFlat(i int) T { return t.data[i] }

// SetFlat stores v at a flat row-major offset.
func (t *Tensor[T]) SetFlat(i int, v T) { t.data[i] = v }

// Clone returns a deep copy of the tensor structure. Element values are
// copied with assignment; pointer element types therefore still alias the
// pointed-to values.
func (t *Tensor[T]) Clone() *Tensor[T] {
	data := make([]T, len(t.data))
	copy(data, t.data)
	return &Tensor[T]{shape: t.shape.Clone(), data: data}
}

// Reshape returns a view of the same backing data under a new shape with
// an equal number of elements. This is the paper's "reshape T into a
// one-dimensional vector v" primitive (Section III-C) generalized to any
// target shape.
func (t *Tensor[T]) Reshape(shape ...int) (*Tensor[T], error) {
	s := Shape(shape).Clone()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Size() != len(t.data) {
		return nil, fmt.Errorf("tensor: cannot reshape %v (size %d) to %v (size %d)", t.shape, len(t.data), s, s.Size())
	}
	return &Tensor[T]{shape: s, data: t.data}, nil
}

// Flatten returns a rank-1 view of the tensor in lexicographic order.
func (t *Tensor[T]) Flatten() *Tensor[T] {
	flat, _ := t.Reshape(len(t.data))
	return flat
}

// Map applies f to every element, returning a new tensor of the same
// shape.
func Map[T, U any](t *Tensor[T], f func(T) U) *Tensor[U] {
	out := make([]U, len(t.data))
	for i, v := range t.data {
		out[i] = f(v)
	}
	return &Tensor[U]{shape: t.shape.Clone(), data: out}
}

// Zip combines two same-shaped tensors element-wise.
func Zip[A, B, C any](a *Tensor[A], b *Tensor[B], f func(A, B) C) (*Tensor[C], error) {
	if !a.shape.Equal(b.shape) {
		return nil, fmt.Errorf("tensor: shape mismatch %v vs %v", a.shape, b.shape)
	}
	out := make([]C, len(a.data))
	for i := range a.data {
		out[i] = f(a.data[i], b.data[i])
	}
	return &Tensor[C]{shape: a.shape.Clone(), data: out}, nil
}

// Fill sets every element to v.
func (t *Tensor[T]) Fill(v T) {
	for i := range t.data {
		t.data[i] = v
	}
}
