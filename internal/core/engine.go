// Package core assembles PP-Stream: it takes a trained network, selects
// or accepts a scaling factor, builds the hybrid privacy-preserving
// protocol, profiles the merged primitive layers offline, solves the
// load-balanced resource allocation, and maps the alternating stages
// onto the distributed stream processing pipeline (paper Section IV).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ppstream/internal/alloc"
	"ppstream/internal/backend"
	"ppstream/internal/nn"
	"ppstream/internal/obs"
	"ppstream/internal/paillier"
	"ppstream/internal/protocol"
	"ppstream/internal/simulate"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// Topology describes the deployment's servers, mirroring Table III's
// "# Servers Model / Data" columns.
type Topology struct {
	ModelServers int
	DataServers  int
	// CoresPerServer is the per-server physical core count; with
	// hyper-threading each server hosts up to 2× threads (Eq. 8).
	CoresPerServer int
}

// Servers expands the topology into the allocator's server list.
func (t Topology) Servers() []alloc.Server {
	out := make([]alloc.Server, 0, t.ModelServers+t.DataServers)
	for i := 0; i < t.ModelServers; i++ {
		out = append(out, alloc.Server{Name: fmt.Sprintf("model-%d", i+1), Model: true, Cores: t.CoresPerServer})
	}
	for i := 0; i < t.DataServers; i++ {
		out = append(out, alloc.Server{Name: fmt.Sprintf("data-%d", i+1), Model: false, Cores: t.CoresPerServer})
	}
	return out
}

// TotalCores returns the topology's aggregate core count.
func (t Topology) TotalCores() int {
	return (t.ModelServers + t.DataServers) * t.CoresPerServer
}

// Options configures engine construction.
type Options struct {
	// Factor is the parameter scaling factor F (required; use
	// scaling.SelectFactor to pick it as in Exp#1).
	Factor int64
	// Topology is the server deployment; zero value means one model +
	// one data server with GOMAXPROCS cores.
	Topology Topology
	// LoadBalance selects alloc.Solve (the paper's ILP) over alloc.Even.
	LoadBalance bool
	// TensorPartition enables input+output tensor partitioning on the
	// model provider's stages (Section IV-D).
	TensorPartition bool
	// ProfileReps is how many sample inferences feed the offline
	// profiling (paper uses 100; tests use fewer).
	ProfileReps int
	// ProfileSample is the input used for offline profiling; required
	// when LoadBalance is set.
	ProfileSample *tensor.Dense
	// Buffer is the pipeline edge depth (default 4).
	Buffer int
	// Pool enables a background encryption-blinding pool on the data
	// provider.
	Pool bool
	// ProfiledTimes, when non-nil, supplies per-merged-stage times
	// (seconds) from an earlier profiling run, skipping the offline
	// profiling pass. Must match the merged stage count and come from
	// the same (model, factor, key size) combination.
	ProfiledTimes []float64
	// ProfiledEncrypt supplies the input-encryption time when
	// ProfiledTimes is set.
	ProfiledEncrypt float64
	// Window bounds the serving runtime's concurrently in-flight
	// requests (Serve/Submit backpressure); <= 0 leaves admission
	// bounded only by the pipeline's edge buffers.
	Window int
	// MaxInFlight enables load shedding in the serving runtime: Submit
	// calls beyond this many admitted-but-unfinished requests fail fast
	// with a retryable protocol.ErrShed instead of queueing. <= 0
	// disables the in-flight shed check. Unlike Window (which blocks
	// submitters), shedding rejects them — the back-pressure signal a
	// remote client's retry loop needs.
	MaxInFlight int
	// ShedLatency sheds new requests while the windowed p95 of recent
	// serve latencies exceeds it; <= 0 disables the latency shed check.
	ShedLatency time.Duration
	// Profile selects the per-round crypto-backend posture (latency,
	// privacy-max, mixed). Empty means privacy-max: every round under
	// Paillier, the paper's original protocol.
	Profile backend.Profile
	// ClearBoundary is the leakage-certified clear boundary: the first
	// linear round allowed to run plaintext (from an
	// internal/leakage.CertifyClearBoundary run). <= 0 means no round
	// may run in the clear regardless of profile.
	ClearBoundary int
}

// Engine is a ready-to-run PP-Stream deployment for one model.
type Engine struct {
	Net      *nn.Network
	Protocol *protocol.Protocol
	Plan     *alloc.Plan
	Layers   []alloc.Layer
	Servers  []alloc.Server
	// Backends is the solved per-round crypto-backend assignment for
	// Options.Profile (privacy-max when unset).
	Backends *backend.Plan
	// EncryptTime is the profiled input encryption time (seconds per
	// request, single thread).
	EncryptTime float64
	opts        Options
	pool        *paillier.Pool
	blind       *paillier.Pool
	keyBits     int
	reg         *obs.Registry

	// serveMu guards the persistent serving runtime (see serve.go).
	serveMu sync.Mutex
	disp    *stream.Dispatcher
	shed    *protocol.Shedder
}

// NewEngine builds the engine: protocol construction, offline profiling,
// resource allocation, and per-stage plan application.
func NewEngine(net *nn.Network, key *paillier.PrivateKey, opts Options) (*Engine, error) {
	if opts.Factor <= 0 {
		return nil, errors.New("core: Options.Factor is required (run the Exp#1 scaling selection)")
	}
	if opts.Topology.ModelServers == 0 && opts.Topology.DataServers == 0 {
		opts.Topology = Topology{ModelServers: 1, DataServers: 1, CoresPerServer: 2}
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 4
	}
	if opts.ProfileReps <= 0 {
		opts.ProfileReps = 3
	}
	cfg := protocol.Config{Factor: opts.Factor, Workers: 1}
	var pool *paillier.Pool
	if opts.Pool {
		pool = paillier.NewPool(&key.PublicKey, nil, 64, 2)
		cfg.Pool = pool
	}
	// The model provider's linear kernel re-randomizes every output
	// ciphertext; a dedicated background pool keeps those r^n
	// exponentiations off the inference critical path.
	blind := paillier.NewPool(&key.PublicKey, nil, 64, 1)
	cfg.BlindPool = blind
	proto, err := protocol.Build(net, key, cfg)
	if err != nil {
		blind.Close()
		if pool != nil {
			pool.Close()
		}
		return nil, err
	}
	e := &Engine{
		Net: net, Protocol: proto, opts: opts, pool: pool, blind: blind,
		Servers: opts.Topology.Servers(), keyBits: key.Bits(),
		reg: obs.NewRegistry("engine/" + net.ModelName),
	}
	e.Protocol.Model.Instrument(e.reg)
	e.reg.GaugeFunc("pool.workers.alive", func() int64 {
		n := blind.AliveWorkers()
		if pool != nil {
			n += pool.AliveWorkers()
		}
		return n
	})

	// Offline profiling (Section IV-C): execute each merged stage once
	// per rep with a single thread and record T_i — unless a previous
	// run's profile was supplied.
	var times []float64
	if opts.ProfiledTimes != nil {
		if len(opts.ProfiledTimes) != len(proto.Merged) {
			return nil, fmt.Errorf("core: %d profiled times for %d merged stages", len(opts.ProfiledTimes), len(proto.Merged))
		}
		times = opts.ProfiledTimes
		e.EncryptTime = opts.ProfiledEncrypt
	} else {
		sample := opts.ProfileSample
		if sample == nil {
			sample = tensor.Zeros(net.InputShape...)
		}
		times, err = e.profile(sample, opts.ProfileReps)
		if err != nil {
			return nil, fmt.Errorf("core: offline profiling: %w", err)
		}
	}
	e.Layers = make([]alloc.Layer, len(proto.Merged))
	for i, m := range proto.Merged {
		e.Layers[i] = alloc.Layer{Name: m.Name(), Linear: m.Kind == nn.Linear, Time: times[i]}
	}

	if opts.LoadBalance {
		e.Plan, err = alloc.Solve(e.Layers, e.Servers, alloc.Options{})
	} else {
		e.Plan, err = alloc.Even(e.Layers, e.Servers)
	}
	if err != nil {
		return nil, fmt.Errorf("core: resource allocation: %w", err)
	}
	if err := e.applyPlan(); err != nil {
		return nil, err
	}
	// Backend planning last: the ILP picks one crypto backend per linear
	// round under the profile's rules (empty profile = privacy-max = all
	// Paillier, the legacy behavior).
	e.Backends, err = proto.ApplyProfile(opts.Profile, opts.ClearBoundary)
	if err != nil {
		return nil, fmt.Errorf("core: backend planning: %w", err)
	}
	return e, nil
}

// Close stops the serving runtime (if up) and releases background
// resources (the blinding pools).
func (e *Engine) Close() {
	_ = e.Shutdown()
	if e.pool != nil {
		e.pool.Close()
	}
	if e.blind != nil {
		e.blind.Close()
	}
}

// Registry exposes the engine's metrics registry. Every pipeline built
// by Pipeline/InferStream publishes its per-stage latency histograms and
// queue-depth gauges here, so histograms accumulate across runs.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Stats returns a point-in-time snapshot of the engine's metrics — the
// view cmd tools print and the metrics endpoint serves.
func (e *Engine) Stats() obs.Snapshot { return e.reg.Snapshot() }

// profile measures per-merged-stage times by walking the protocol rounds
// sequentially with single-threaded stages. It also records the input
// encryption time (step 1.1), which the allocation does not cover but
// the latency model needs.
func (e *Engine) profile(sample *tensor.Dense, reps int) ([]float64, error) {
	merged := e.Protocol.Merged
	times := make([]float64, len(merged))
	e.EncryptTime = 0
	for rep := 0; rep < reps; rep++ {
		encStart := time.Now()
		env, err := e.Protocol.Data.Encrypt(uint64(1_000_000+rep), sample)
		e.EncryptTime += time.Since(encStart).Seconds()
		if err != nil {
			return nil, err
		}
		rounds := e.Protocol.Rounds()
		mi := 0
		for r := 0; r < rounds; r++ {
			start := time.Now()
			env, err = e.Protocol.Model.ProcessLinear(r, env)
			if err != nil {
				return nil, err
			}
			times[mi] += time.Since(start).Seconds()
			mi++
			start = time.Now()
			env, err = e.Protocol.Data.ProcessNonLinear(r, env)
			if err != nil {
				return nil, err
			}
			times[mi] += time.Since(start).Seconds()
			mi++
		}
		e.Protocol.Model.Forget(uint64(1_000_000 + rep))
	}
	for i := range times {
		times[i] /= float64(reps)
	}
	e.EncryptTime /= float64(reps)
	return times, nil
}

// SimStages converts the engine's profiled stage times, allocation plan,
// and partitioning configuration into the discrete-event latency model's
// stage list (see internal/simulate): an encrypt stage followed by the
// merged primitive layers. Linear stages carry the communication volume
// of the configured partitioning mode.
func (e *Engine) SimStages() ([]simulate.Stage, error) {
	var stages []simulate.Stage
	// The input encryption stage parallelizes on the data provider; give
	// it the first non-linear stage's thread allocation.
	encThreads := 1
	for i, m := range e.Protocol.Merged {
		if m.Kind == nn.NonLinear {
			encThreads = e.Plan.Threads[i]
			break
		}
	}
	stages = append(stages, simulate.Stage{Name: "encrypt", Base: e.EncryptTime, Threads: encThreads})
	li := 0
	for i, m := range e.Protocol.Merged {
		s := simulate.Stage{Name: m.Name(), Base: e.Layers[i].Time, Threads: e.Plan.Threads[i]}
		if m.Kind == nn.Linear {
			withPart, withoutPart, err := e.Protocol.Model.StageComm(li, e.Plan.Threads[i])
			if err != nil {
				return nil, err
			}
			if e.opts.TensorPartition {
				s.CommElems = withPart
			} else {
				s.CommElems = withoutPart
			}
			li++
		}
		stages = append(stages, s)
	}
	return stages, nil
}

// Simulate predicts the deployment's latency for a batch of the given
// size using the profiled stage costs, the allocation plan, and the
// measured per-element transfer cost (see internal/simulate's package
// comment for the single-CPU-host substitution rationale).
func (e *Engine) Simulate(requests int) (*simulate.Result, error) {
	stages, err := e.SimStages()
	if err != nil {
		return nil, err
	}
	perElem := simulate.PerElementTransferCost(2 * e.keyBits)
	return simulate.Pipeline(stages, requests, perElem)
}

// applyPlan pushes the allocation's thread counts into the protocol's
// stages, enabling tensor partitioning on linear stages when configured.
func (e *Engine) applyPlan() error {
	li, ni := 0, 0
	for i, m := range e.Protocol.Merged {
		threads := e.Plan.Threads[i]
		if m.Kind == nn.Linear {
			if err := e.Protocol.Model.SetStagePlan(li, threads, e.opts.TensorPartition, e.opts.TensorPartition); err != nil {
				return err
			}
			li++
		} else {
			if err := e.Protocol.Data.SetStageThreads(ni, threads); err != nil {
				return err
			}
			ni++
		}
	}
	return nil
}

// StageReport describes one merged stage's deployment in a readable
// form: profiled time, assigned server, threads, and (for linear stages)
// the per-request communication volumes of the two partitioning modes.
type StageReport struct {
	Name    string
	Linear  bool
	Time    float64 // profiled seconds per request, single thread
	Server  string
	Threads int
	// Backend names the crypto backend the ILP assigned to this round
	// (linear stages only; empty for non-linear stages).
	Backend string
	// CommWithPart / CommWithoutPart are in ciphertext elements per
	// request (zero for non-linear stages).
	CommWithPart    int
	CommWithoutPart int
}

// Report summarizes the engine's plan per stage — what cmd tools and
// examples print for operators.
func (e *Engine) Report() ([]StageReport, error) {
	out := make([]StageReport, len(e.Protocol.Merged))
	li := 0
	for i, m := range e.Protocol.Merged {
		r := StageReport{
			Name:    m.Name(),
			Linear:  m.Kind == nn.Linear,
			Time:    e.Layers[i].Time,
			Server:  e.Servers[e.Plan.ServerOf[i]].Name,
			Threads: e.Plan.Threads[i],
		}
		if r.Linear {
			with, without, err := e.Protocol.Model.StageComm(li, r.Threads)
			if err != nil {
				return nil, err
			}
			r.CommWithPart, r.CommWithoutPart = with, without
			if e.Backends != nil && li < len(e.Backends.Assignment) {
				r.Backend = string(e.Backends.Assignment[li])
			}
			li++
		}
		out[i] = r
	}
	return out, nil
}

// InferOne runs a single request through the full collaborative workflow
// (sequential round walk), returning the result and the wall-clock
// latency.
func (e *Engine) InferOne(req uint64, x *tensor.Dense) (*tensor.Dense, time.Duration, error) {
	start := time.Now()
	out, err := e.Protocol.Infer(req, x)
	return out, time.Since(start), err
}

// Pipeline builds the streaming deployment: an encrypt stage followed by
// alternating linear (model-provider) and non-linear (data-provider)
// stages, connected by in-process edges. Payloads are *protocol.Envelope
// (submit *tensor.Dense inputs).
func (e *Engine) Pipeline() (*stream.Pipeline, error) {
	handlers := []stream.Handler{
		stream.HandlerFunc{StageName: "encrypt", Fn: func(_ context.Context, m *stream.Message) (*stream.Message, error) {
			x, ok := m.Payload.(*tensor.Dense)
			if !ok {
				return nil, fmt.Errorf("core: encrypt stage expects *tensor.Dense, got %T", m.Payload)
			}
			env, err := e.Protocol.Data.Encrypt(m.Seq, x)
			if err != nil {
				return nil, err
			}
			return &stream.Message{Payload: env}, nil
		}},
	}
	rounds := e.Protocol.Rounds()
	for r := 0; r < rounds; r++ {
		r := r
		handlers = append(handlers, stream.HandlerFunc{
			StageName: fmt.Sprintf("linear-%d", r),
			Fn: func(_ context.Context, m *stream.Message) (*stream.Message, error) {
				env, ok := m.Payload.(*protocol.Envelope)
				if !ok {
					return nil, fmt.Errorf("core: linear stage expects envelope, got %T", m.Payload)
				}
				out, err := e.Protocol.Model.ProcessLinear(r, env)
				if err != nil {
					return nil, err
				}
				return &stream.Message{Payload: out}, nil
			},
		})
		last := r == rounds-1
		handlers = append(handlers, stream.HandlerFunc{
			StageName: fmt.Sprintf("nonlinear-%d", r),
			Fn: func(_ context.Context, m *stream.Message) (*stream.Message, error) {
				env, ok := m.Payload.(*protocol.Envelope)
				if !ok {
					return nil, fmt.Errorf("core: non-linear stage expects envelope, got %T", m.Payload)
				}
				out, err := e.Protocol.Data.ProcessNonLinear(r, env)
				if err != nil {
					return nil, err
				}
				if last {
					e.Protocol.Model.Forget(env.Req)
				}
				return &stream.Message{Payload: out}, nil
			},
		})
	}
	p, err := stream.NewPipeline(e.opts.Buffer, handlers...)
	if err != nil {
		return nil, err
	}
	p.Instrument(e.reg)
	return p, nil
}

// StreamStats summarizes a streaming run.
type StreamStats struct {
	Requests int
	// Makespan is total wall-clock time from first submit to last
	// result.
	Makespan time.Duration
	// EffectiveLatency is Makespan divided by Requests: the steady-state
	// per-request latency of the pipelined deployment, the quantity the
	// paper's Exp#2–4 report for the streaming variants.
	EffectiveLatency time.Duration
	// FirstLatency is the end-to-end latency of the first request (no
	// pipelining benefit).
	FirstLatency time.Duration
	// Traces holds each completed request's per-stage latency breakdown
	// (queue wait + busy per stage), indexed by input position — the
	// raw material for the Table IV/V-style percentile tables.
	Traces []*stream.Trace
	// Errors holds each request's failure (nil on success), indexed by
	// input position. A failed request does not abort the batch: its
	// result slot stays nil and the other requests complete normally.
	Errors []error
	// Failed counts the non-nil entries of Errors.
	Failed int
}

// InferStream runs a batch of inputs through the serving runtime and
// returns results indexed by input position plus timing statistics. It
// is a thin batch wrapper over Serve/Submit: if the engine is not
// already serving, an ephemeral runtime is started for the batch and
// fully shut down afterwards (no stage goroutines survive, even on
// error paths). Per-request failures land in StreamStats.Errors; the
// returned error covers only runtime-level failures.
func (e *Engine) InferStream(ctx context.Context, inputs []*tensor.Dense) ([]*tensor.Dense, *StreamStats, error) {
	if len(inputs) == 0 {
		return nil, nil, errors.New("core: no inputs")
	}
	if !e.Serving() {
		if err := e.Serve(ctx); err != nil {
			return nil, nil, err
		}
		defer e.Shutdown()
	}
	start := time.Now()
	results := make([]*tensor.Dense, len(inputs))
	traces := make([]*stream.Trace, len(inputs))
	errs := make([]error, len(inputs))
	var (
		mu           sync.Mutex
		firstLatency time.Duration
		wg           sync.WaitGroup
	)
	for i, x := range inputs {
		i, x := i, x
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, trace, err := e.Submit(ctx, x)
			mu.Lock()
			defer mu.Unlock()
			results[i], traces[i], errs[i] = out, trace, err
			if firstLatency == 0 {
				firstLatency = time.Since(start)
			}
		}()
	}
	wg.Wait()
	makespan := time.Since(start)
	stats := &StreamStats{
		Requests:         len(inputs),
		Makespan:         makespan,
		EffectiveLatency: makespan / time.Duration(len(inputs)),
		FirstLatency:     firstLatency,
		Traces:           traces,
		Errors:           errs,
	}
	var runtimeErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		stats.Failed++
		// A dead runtime (not a per-request failure) aborts the batch.
		var reqErr *RequestError
		if !errors.As(err, &reqErr) && runtimeErr == nil {
			runtimeErr = err
		}
	}
	return results, stats, runtimeErr
}
