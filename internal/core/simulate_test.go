package core

import (
	"testing"

	"ppstream/internal/nn"
)

func TestSimStagesAndSimulate(t *testing.T) {
	k := key(t)
	net := smallNet(t)
	eng, err := NewEngine(net, k, Options{Factor: 1000, ProfileReps: 1, LoadBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	stages, err := eng.SimStages()
	if err != nil {
		t.Fatal(err)
	}
	// encrypt + every merged stage
	if len(stages) != len(eng.Protocol.Merged)+1 {
		t.Fatalf("%d sim stages for %d merged layers", len(stages), len(eng.Protocol.Merged))
	}
	if stages[0].Name != "encrypt" || stages[0].Base <= 0 {
		t.Errorf("encrypt stage %+v", stages[0])
	}
	// linear stages carry communication accounting
	li := 0
	for i, m := range eng.Protocol.Merged {
		s := stages[i+1]
		if m.Kind == nn.Linear {
			if s.CommElems <= 0 {
				t.Errorf("linear stage %s has no comm accounting", s.Name)
			}
			li++
		}
		if s.Threads != eng.Plan.Threads[i] {
			t.Errorf("stage %s threads %d != plan %d", s.Name, s.Threads, eng.Plan.Threads[i])
		}
	}
	res, err := eng.Simulate(16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Effective <= 0 || res.First < res.Effective {
		t.Errorf("simulation result %+v", res)
	}
	if res.Makespan < res.First {
		t.Error("makespan below first-request latency")
	}
}

// TestSimulatePartitioningReducesComm: the same engine with partitioning
// carries less communication in its stage models.
func TestSimulatePartitioningReducesComm(t *testing.T) {
	k := key(t)
	net := smallNet(t)
	without, err := NewEngine(net, k, Options{Factor: 1000, ProfileReps: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer without.Close()
	with, err := NewEngine(net, k, Options{Factor: 1000, ProfileReps: 1, TensorPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	defer with.Close()
	sa, err := without.SimStages()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := with.SimStages()
	if err != nil {
		t.Fatal(err)
	}
	var commA, commB int
	for i := range sa {
		commA += sa[i].CommElems
		commB += sb[i].CommElems
	}
	if commB >= commA {
		t.Errorf("partitioning comm %d not below baseline %d", commB, commA)
	}
}

// TestProfiledTimesSkipProfiling: supplying a profile bypasses the
// offline pass and lands in the plan.
func TestProfiledTimesSkipProfiling(t *testing.T) {
	k := key(t)
	net := smallNet(t)
	ref, err := NewEngine(net, k, Options{Factor: 1000, ProfileReps: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	times := make([]float64, len(ref.Layers))
	for i, l := range ref.Layers {
		times[i] = l.Time
	}
	eng, err := NewEngine(net, k, Options{
		Factor:          1000,
		ProfiledTimes:   times,
		ProfiledEncrypt: ref.EncryptTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i := range times {
		if eng.Layers[i].Time != times[i] {
			t.Errorf("layer %d time %v, want %v", i, eng.Layers[i].Time, times[i])
		}
	}
	// Wrong length must be rejected.
	if _, err := NewEngine(net, k, Options{Factor: 1000, ProfiledTimes: times[:1]}); err == nil {
		t.Error("mismatched profile length accepted")
	}
}

func TestEngineReport(t *testing.T) {
	k := key(t)
	net := smallNet(t)
	eng, err := NewEngine(net, k, Options{Factor: 1000, ProfileReps: 1, LoadBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	report, err := eng.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(report) != len(eng.Protocol.Merged) {
		t.Fatalf("report covers %d stages", len(report))
	}
	for _, r := range report {
		if r.Threads < 1 || r.Server == "" || r.Name == "" {
			t.Errorf("incomplete report row %+v", r)
		}
		if r.Linear && (r.CommWithPart <= 0 || r.CommWithoutPart < r.CommWithPart) {
			t.Errorf("linear comm accounting wrong: %+v", r)
		}
		if !r.Linear && r.CommWithPart != 0 {
			t.Errorf("non-linear stage has comm: %+v", r)
		}
	}
}
