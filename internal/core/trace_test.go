package core

import (
	"context"
	"testing"
	"time"

	"ppstream/internal/stream"
)

func TestTraceTreeOf(t *testing.T) {
	if TraceTreeOf(nil) != nil {
		t.Error("nil trace should give nil tree")
	}
	tr := &stream.Trace{ID: "abcdef0123456789", Spans: []stream.Span{
		{Stage: "encrypt", Wait: time.Millisecond, Busy: 2 * time.Millisecond},
		{Stage: "linear-0", Wait: 3 * time.Millisecond, Busy: 4 * time.Millisecond},
		{Stage: "nonlinear-0", Busy: 5 * time.Millisecond},
	}}
	tree := TraceTreeOf(tr)
	if tree.ID != tr.ID {
		t.Errorf("tree ID %q", tree.ID)
	}
	if tree.Total != tr.Total() {
		t.Errorf("total %v, want %v", tree.Total, tr.Total())
	}
	if got := tree.SegmentTotal("client-queue"); got != time.Millisecond {
		t.Errorf("client-queue %v", got)
	}
	if got := tree.SegmentTotal("client-encrypt"); got != 2*time.Millisecond {
		t.Errorf("client-encrypt %v", got)
	}
	if got := tree.SegmentTotal("server-queue"); got != 3*time.Millisecond {
		t.Errorf("server-queue %v", got)
	}
	if got := tree.SegmentTotal("server-linear"); got != 4*time.Millisecond {
		t.Errorf("server-linear %v", got)
	}
	if got := tree.SegmentTotal("client-nonlinear"); got != 5*time.Millisecond {
		t.Errorf("client-nonlinear %v", got)
	}
	// The zero-wait nonlinear span must not produce an empty queue segment.
	var queues int
	for _, s := range tree.Segments {
		if s.Name == "queue" {
			queues++
		}
	}
	if queues != 2 {
		t.Errorf("%d queue segments, want 2", queues)
	}
}

// TestEngineSubmitTraced runs a real request through the serving runtime
// and checks the merged tree attributes both roles and accounts for the
// submitter-observed latency.
func TestEngineSubmitTraced(t *testing.T) {
	eng := serveEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := eng.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	x := randInputs(1)[0]
	out, tree, err := eng.SubmitTraced(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("no result")
	}
	if tree == nil || tree.ID == "" {
		t.Fatalf("no trace tree / ID: %+v", tree)
	}
	var haveClient, haveServer bool
	for _, p := range tree.Parties() {
		switch p {
		case "client":
			haveClient = true
		case "server":
			haveServer = true
		}
	}
	if !haveClient || !haveServer {
		t.Errorf("parties %v, want both client and server", tree.Parties())
	}
	if tree.Sum() > tree.Total {
		t.Errorf("segment sum %v exceeds observed total %v", tree.Sum(), tree.Total)
	}
	if tree.SegmentTotal("server-linear") <= 0 {
		t.Error("no server-linear time recorded")
	}
}
