package core

import (
	"context"
	"crypto/rand"
	mathrand "math/rand"
	"sync"
	"testing"

	"ppstream/internal/nn"
	"ppstream/internal/paillier"
	"ppstream/internal/tensor"
)

var (
	keyOnce sync.Once
	testKey *paillier.PrivateKey
)

func key(t testing.TB) *paillier.PrivateKey {
	keyOnce.Do(func() {
		k, err := paillier.GenerateKey(rand.Reader, 256)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	})
	return testKey
}

func smallNet(t testing.TB) *nn.Network {
	r := mathrand.New(mathrand.NewSource(44))
	net, err := nn.NewNetwork("core-test", tensor.Shape{4},
		nn.NewFC("fc1", 4, 6, r),
		nn.NewReLU("relu1"),
		nn.NewFC("fc2", 6, 3, r),
		nn.NewSoftMax("softmax"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func randInputs(n int) []*tensor.Dense {
	r := mathrand.New(mathrand.NewSource(55))
	out := make([]*tensor.Dense, n)
	for i := range out {
		x := tensor.Zeros(4)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()
		}
		out[i] = x
	}
	return out
}

func TestTopology(t *testing.T) {
	topo := Topology{ModelServers: 2, DataServers: 1, CoresPerServer: 4}
	servers := topo.Servers()
	if len(servers) != 3 {
		t.Fatalf("%d servers", len(servers))
	}
	if !servers[0].Model || servers[2].Model {
		t.Error("server typing wrong")
	}
	if topo.TotalCores() != 12 {
		t.Errorf("TotalCores %d", topo.TotalCores())
	}
}

func TestNewEngineValidation(t *testing.T) {
	k := key(t)
	net := smallNet(t)
	if _, err := NewEngine(net, k, Options{}); err == nil {
		t.Error("missing factor accepted")
	}
}

func TestEngineInferOneMatchesPlain(t *testing.T) {
	k := key(t)
	net := smallNet(t)
	eng, err := NewEngine(net, k, Options{Factor: 1000, ProfileReps: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	x := randInputs(1)[0]
	want, _ := net.Forward(x)
	got, lat, err := eng.InferOne(1, x)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Error("no latency measured")
	}
	if !tensor.AllClose(want, got, 1e-2) {
		t.Errorf("engine result diverges: %v vs %v", got.Data(), want.Data())
	}
}

func TestEngineStreamingMatchesPlain(t *testing.T) {
	k := key(t)
	net := smallNet(t)
	eng, err := NewEngine(net, k, Options{
		Factor:      1000,
		ProfileReps: 1,
		Topology:    Topology{ModelServers: 1, DataServers: 1, CoresPerServer: 2},
		LoadBalance: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	inputs := randInputs(6)
	results, stats, err := eng.InferStream(context.Background(), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 6 || stats.Makespan <= 0 || stats.EffectiveLatency <= 0 {
		t.Errorf("stats %+v", stats)
	}
	if stats.FirstLatency > stats.Makespan {
		t.Error("first latency exceeds makespan")
	}
	for i, x := range inputs {
		want, _ := net.Forward(x)
		if results[i] == nil {
			t.Fatalf("missing result %d", i)
		}
		if tensor.ArgMax(want) != tensor.ArgMax(results[i]) {
			t.Errorf("request %d prediction differs", i)
		}
	}
}

func TestEngineWithAllFeatures(t *testing.T) {
	k := key(t)
	r := mathrand.New(mathrand.NewSource(66))
	p := tensor.ConvParams{InC: 1, InH: 4, InW: 4, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv, err := nn.NewConv("conv", p, r)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewNetwork("conv-net", tensor.Shape{1, 4, 4},
		conv,
		nn.NewReLU("relu"),
		nn.NewFlatten("fl"),
		nn.NewFC("fc", 32, 3, r),
		nn.NewSoftMax("sm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(net, k, Options{
		Factor:          1000,
		ProfileReps:     1,
		Topology:        Topology{ModelServers: 2, DataServers: 1, CoresPerServer: 2},
		LoadBalance:     true,
		TensorPartition: true,
		Pool:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	x := tensor.Zeros(1, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = float64(i) / 16
	}
	want, _ := net.Forward(x)
	got, _, err := eng.InferOne(1, x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, got, 1e-2) {
		t.Errorf("full-featured engine diverges: %v vs %v", got.Data(), want.Data())
	}
	// The plan must satisfy the allocation constraints.
	if eng.Plan == nil || len(eng.Plan.Threads) != len(eng.Layers) {
		t.Error("plan missing")
	}
}
