package core
