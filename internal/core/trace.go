package core

import (
	"context"
	"strconv"
	"strings"
	"time"

	"ppstream/internal/obs"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// This file adapts the in-process serving runtime's per-stage traces to
// the cross-party obs.TraceTree model, so single-host deployments (both
// roles in one engine) and split TCP deployments (protocol.Client)
// report the same merged-trace shape to ppbench and the report tables.

// TraceTreeOf converts a pipeline trace into a TraceTree. Stage
// attribution follows the protocol's role split: "linear-N" stages run
// at the model provider ("server"); "encrypt" and "nonlinear-N" run at
// the data provider ("client"). Each stage contributes its queue wait
// as a per-party "queue" segment and its busy time under the stage's
// own name. There is no wire segment — the engine's edges are
// in-process channels. Returns nil for a nil trace.
func TraceTreeOf(t *stream.Trace) *obs.TraceTree {
	if t == nil {
		return nil
	}
	tree := &obs.TraceTree{ID: t.ID, Total: t.Total()}
	for _, s := range t.Spans {
		party, name, round := splitStage(s.Stage)
		if s.Wait > 0 {
			tree.Segments = append(tree.Segments, obs.Segment{Party: party, Name: "queue", Round: round, Dur: s.Wait})
		}
		tree.Segments = append(tree.Segments, obs.Segment{Party: party, Name: name, Round: round, Dur: s.Busy})
	}
	return tree
}

// splitStage maps a pipeline stage name to (party, segment name, round).
func splitStage(stage string) (string, string, int) {
	name, round := stage, -1
	if i := strings.LastIndexByte(stage, '-'); i > 0 {
		if n, err := strconv.Atoi(stage[i+1:]); err == nil {
			name, round = stage[:i], n
		}
	}
	if name == "linear" {
		return "server", name, round
	}
	return "client", name, round
}

// SubmitTraced is Submit returning the request's merged TraceTree in
// place of the raw pipeline trace. The tree's Total is the submitter-
// observed latency (admission wait included), so its unattributed
// remainder bounds the dispatcher overhead outside the pipeline stages.
func (e *Engine) SubmitTraced(ctx context.Context, x *tensor.Dense) (*tensor.Dense, *obs.TraceTree, error) {
	start := time.Now()
	out, trace, err := e.Submit(ctx, x)
	if err != nil {
		return nil, nil, err
	}
	tree := TraceTreeOf(trace)
	if tree != nil {
		tree.Total = time.Since(start)
	}
	return out, tree, nil
}
