package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ppstream/internal/protocol"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// This file is the engine's persistent serving runtime: one long-lived
// instrumented pipeline shared by any number of concurrent submitters,
// each receiving its own result or error (paper Section V's sustained
// request stream, as opposed to the one-shot batch runs of InferOne).

// RequestError is one request's failure inside the serving pipeline. The
// batch and the other in-flight requests are unaffected (fault
// containment); Stage names the pipeline stage whose handler failed.
type RequestError struct {
	Seq   uint64
	Stage string
	Msg   string
}

// Error implements error.
func (e *RequestError) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("core: request %d failed at stage %s: %s", e.Seq, e.Stage, e.Msg)
	}
	return fmt.Sprintf("core: request %d failed: %s", e.Seq, e.Msg)
}

// ErrNotServing is returned by Submit when Serve has not been called (or
// the runtime has been shut down).
var ErrNotServing = errors.New("core: engine is not serving (call Serve first)")

// Serve starts the engine's persistent serving runtime: it builds one
// instrumented pipeline and a completion dispatcher that lives until
// Shutdown (or Close). While serving, any number of goroutines may call
// Submit concurrently; the registry exposes "serve.inflight",
// "serve.requests.ok" / "serve.requests.err" / "serve.requests.shed",
// and the end-to-end "serve.latency" histogram. ctx bounds the lifetime
// of the stage goroutines.
//
// When Options.MaxInFlight or ShedLatency is set, an admission
// controller fronts Submit: excess or overload-era requests fail fast
// with a retryable error matching protocol.ErrShed instead of queueing
// behind work the runtime cannot finish in time.
func (e *Engine) Serve(ctx context.Context) error {
	e.serveMu.Lock()
	defer e.serveMu.Unlock()
	if e.disp != nil {
		return errors.New("core: engine is already serving")
	}
	p, err := e.Pipeline()
	if err != nil {
		return err
	}
	d, err := stream.NewDispatcher(ctx, p, e.opts.Window)
	if err != nil {
		return err
	}
	e.disp = d
	if e.shed == nil && (e.opts.MaxInFlight > 0 || e.opts.ShedLatency > 0) {
		// Built once and kept across Serve/Shutdown cycles: the latency
		// window it accumulates stays meaningful, and GaugeFunc must not
		// be registered twice.
		e.shed = protocol.NewShedder(protocol.ShedConfig{
			MaxInFlight:   int64(e.opts.MaxInFlight),
			LatencyTarget: e.opts.ShedLatency,
			Registry:      e.reg,
		})
	}
	e.reg.GaugeFunc("serve.inflight", d.InFlight)
	return nil
}

// Serving reports whether the persistent runtime is up.
func (e *Engine) Serving() bool {
	e.serveMu.Lock()
	defer e.serveMu.Unlock()
	return e.disp != nil
}

// Shutdown stops admission, drains in-flight requests, and stops every
// stage goroutine. The engine can Serve again afterwards. It is a no-op
// when the runtime is not up.
func (e *Engine) Shutdown() error {
	e.serveMu.Lock()
	d := e.disp
	e.disp = nil
	e.serveMu.Unlock()
	if d == nil {
		return nil
	}
	return d.Close()
}

// Submit runs one inference through the serving runtime, blocking until
// its result is ready, ctx expires, or the runtime shuts down. Safe for
// concurrent use; each caller gets exactly its own result. A request
// that fails inside the pipeline returns a *RequestError naming the
// failing stage, while other in-flight requests proceed undisturbed.
func (e *Engine) Submit(ctx context.Context, x *tensor.Dense) (*tensor.Dense, *stream.Trace, error) {
	e.serveMu.Lock()
	d, shed := e.disp, e.shed
	e.serveMu.Unlock()
	if d == nil {
		return nil, nil, ErrNotServing
	}
	// Cumulative counters answer "since boot"; the live siblings answer
	// "right now" for /debug/live and ppbench top's rate columns.
	countErr := func() {
		e.reg.Counter("serve.requests.err").Inc()
		e.reg.LiveCounter("serve.requests.err").Inc()
	}
	if err := shed.Acquire(); err != nil {
		e.reg.Counter("serve.requests.shed").Inc()
		e.reg.LiveCounter("serve.requests.shed").Inc()
		return nil, nil, err
	}
	defer shed.Release()
	start := time.Now()
	m, err := d.Do(ctx, x)
	if err != nil {
		countErr()
		return nil, nil, err
	}
	elapsed := time.Since(start)
	shed.Observe(elapsed)
	e.reg.Histogram("serve.latency").Observe(elapsed)
	e.reg.LiveHistogram("serve.latency").Observe(elapsed)
	if m.Err != "" {
		countErr()
		// The failed message skipped the remaining stages, including the
		// final one that drops the request's obfuscation state — release
		// it here so failed requests do not leak permutations.
		e.Protocol.Model.Forget(m.Seq)
		return nil, m.Trace, &RequestError{Seq: m.Seq, Stage: m.FailedStage, Msg: m.Err}
	}
	env, ok := m.Payload.(*protocol.Envelope)
	if !ok || env.Result == nil {
		countErr()
		return nil, m.Trace, &RequestError{Seq: m.Seq, Msg: fmt.Sprintf("no result in payload %T", m.Payload)}
	}
	e.reg.Counter("serve.requests.ok").Inc()
	e.reg.LiveCounter("serve.requests.ok").Inc()
	return env.Result, m.Trace, nil
}
