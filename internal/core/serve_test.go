package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"ppstream/internal/protocol"
	"ppstream/internal/tensor"
)

func serveEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := NewEngine(smallNet(t), key(t), Options{Factor: 1000, ProfileReps: 1, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// TestEngineServeConcurrentSubmitters: N goroutines share the persistent
// runtime; each gets its own correct result.
func TestEngineServeConcurrentSubmitters(t *testing.T) {
	eng := serveEngine(t)
	net := smallNet(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := eng.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	if err := eng.Serve(ctx); err == nil {
		t.Error("double Serve accepted")
	}
	inputs := randInputs(8)
	var wg sync.WaitGroup
	errs := make(chan error, len(inputs))
	for _, x := range inputs {
		x := x
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, trace, err := eng.Submit(ctx, x)
			if err != nil {
				errs <- err
				return
			}
			if trace == nil || len(trace.Spans) == 0 {
				errs <- errors.New("no trace spans")
				return
			}
			want, _ := net.Forward(x)
			if tensor.ArgMax(want) != tensor.ArgMax(out) {
				errs <- errors.New("prediction differs from plaintext")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := eng.Stats()
	if snap.Counters["serve.requests.ok"] != uint64(len(inputs)) {
		t.Errorf("serve.requests.ok = %d, want %d", snap.Counters["serve.requests.ok"], len(inputs))
	}
	if snap.Gauges["serve.inflight"] != 0 {
		t.Errorf("serve.inflight = %d after drain", snap.Gauges["serve.inflight"])
	}
	if err := eng.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Submit(ctx, inputs[0]); !errors.Is(err, ErrNotServing) {
		t.Errorf("submit after shutdown: %v", err)
	}
	// The runtime restarts cleanly.
	if err := eng.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Submit(ctx, inputs[0]); err != nil {
		t.Fatal(err)
	}
}

// TestEngineServeErrorIsolation: a request that fails mid-pipeline
// returns a *RequestError naming the stage while concurrent requests
// complete undisturbed, and the failed request's obfuscation state is
// released.
func TestEngineServeErrorIsolation(t *testing.T) {
	eng := serveEngine(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := eng.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	good := randInputs(3)
	bad := tensor.Zeros(7) // wrong input size: fails the first linear stage
	var wg sync.WaitGroup
	errs := make(chan error, len(good))
	for _, x := range good {
		x := x
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := eng.Submit(ctx, x); err != nil {
				errs <- err
			}
		}()
	}
	_, _, badErr := eng.Submit(ctx, bad)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("good request disturbed: %v", err)
	}
	var reqErr *RequestError
	if !errors.As(badErr, &reqErr) {
		t.Fatalf("bad request error %v (type %T), want *RequestError", badErr, badErr)
	}
	if reqErr.Stage != "linear-0" {
		t.Errorf("failed stage %q, want linear-0", reqErr.Stage)
	}
	if got := eng.Stats().Counters["serve.requests.err"]; got != 1 {
		t.Errorf("serve.requests.err = %d", got)
	}
}

// TestEngineServeSheds: with MaxInFlight 1, a Submit arriving while the
// only slot is held fails fast with a retryable error matching
// protocol.ErrShed — and is counted — instead of queueing; freeing the
// slot admits again.
func TestEngineServeSheds(t *testing.T) {
	eng, err := NewEngine(smallNet(t), key(t), Options{Factor: 1000, ProfileReps: 1, Window: 8, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := eng.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	x := randInputs(1)[0]
	// Occupy the only slot as a stand-in for a long-running request.
	if err := eng.shed.Acquire(); err != nil {
		t.Fatal(err)
	}
	_, _, err = eng.Submit(ctx, x)
	if !errors.Is(err, protocol.ErrShed) {
		t.Fatalf("submit over the in-flight bound: %v, want ErrShed", err)
	}
	if !protocol.Retryable(err) {
		t.Error("shed rejection must be retryable")
	}
	if got := eng.Stats().Counters["serve.requests.shed"]; got != 1 {
		t.Errorf("serve.requests.shed = %d", got)
	}
	eng.shed.Release()
	if _, _, err := eng.Submit(ctx, x); err != nil {
		t.Fatalf("submit after slot freed: %v", err)
	}
	// The shedder survives a Shutdown/Serve cycle (its latency window and
	// gauge registration are engine-scoped, not per-Serve).
	if err := eng.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Submit(ctx, x); err != nil {
		t.Fatalf("submit after restart: %v", err)
	}
}

// TestInferStreamPartialFailure: one bad input fails only its own slot;
// the batch completes and reports the per-request error.
func TestInferStreamPartialFailure(t *testing.T) {
	eng := serveEngine(t)
	net := smallNet(t)
	inputs := randInputs(5)
	inputs[2] = tensor.Zeros(9) // wrong size
	results, stats, err := eng.InferStream(context.Background(), inputs)
	if err != nil {
		t.Fatalf("batch-level error for a per-request failure: %v", err)
	}
	if stats.Failed != 1 {
		t.Errorf("Failed = %d, want 1", stats.Failed)
	}
	var reqErr *RequestError
	if !errors.As(stats.Errors[2], &reqErr) || reqErr.Stage != "linear-0" {
		t.Errorf("slot 2 error %v", stats.Errors[2])
	}
	if results[2] != nil {
		t.Error("failed slot has a result")
	}
	for i, x := range inputs {
		if i == 2 {
			continue
		}
		if stats.Errors[i] != nil || results[i] == nil {
			t.Fatalf("slot %d: err=%v result=%v", i, stats.Errors[i], results[i])
		}
		want, _ := net.Forward(x)
		if tensor.ArgMax(want) != tensor.ArgMax(results[i]) {
			t.Errorf("slot %d prediction differs", i)
		}
	}
}

// TestInferStreamLeaksNoGoroutines: repeated ephemeral batch runs
// (including ones with failures) leave no stage goroutines behind —
// the leak the old early-return paths had.
func TestInferStreamLeaksNoGoroutines(t *testing.T) {
	eng := serveEngine(t)
	inputs := randInputs(2)
	inputs = append(inputs, tensor.Zeros(3)) // one failing request per batch
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		if _, _, err := eng.InferStream(context.Background(), inputs); err != nil {
			t.Fatal(err)
		}
	}
	// Allow stage goroutines a moment to exit after Shutdown returns.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d after ephemeral batches", before, runtime.NumGoroutine())
}
