package backend

import (
	"fmt"

	"ppstream/internal/obfuscate"
	"ppstream/internal/tensor"
)

// Obfuscation is uniform across backends: every intermediate round's
// output is permuted regardless of how it was computed — ciphertexts,
// share pairs, or plaintext integers move as opaque elements — so the
// position-privacy argument of the paper is unchanged by the backend
// choice, and the data provider's inverse permutation step stays
// backend-agnostic.

// ApplyPerm returns the payload with its elements permuted (flattened
// order), preserving the representation.
func (p *Payload) ApplyPerm(perm *obfuscate.Permutation) (*Payload, error) {
	out := &Payload{Kind: p.Kind, Exp: p.Exp}
	var err error
	switch p.Kind {
	case PaillierHE:
		out.CT, err = obfuscate.ApplyTensor(perm, p.CT)
	case SSGC:
		out.Sh, err = obfuscate.ApplyTensor(perm, p.Sh)
	case Clear:
		out.Plain, err = obfuscate.ApplyTensor(perm, p.Plain)
	default:
		err = fmt.Errorf("backend: cannot permute payload of kind %q", p.Kind)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// InvertPerm undoes a permutation, restoring the given shape.
func (p *Payload) InvertPerm(perm *obfuscate.Permutation, shape tensor.Shape) (*Payload, error) {
	out := &Payload{Kind: p.Kind, Exp: p.Exp}
	var err error
	switch p.Kind {
	case PaillierHE:
		out.CT, err = obfuscate.InvertTensor(perm, p.CT, shape)
	case SSGC:
		out.Sh, err = obfuscate.InvertTensor(perm, p.Sh, shape)
	case Clear:
		out.Plain, err = obfuscate.InvertTensor(perm, p.Plain, shape)
	default:
		err = fmt.Errorf("backend: cannot invert payload of kind %q", p.Kind)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}
