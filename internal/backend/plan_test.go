package backend

import (
	"testing"
)

// heartLayers mirrors the Heart model's three FC rounds: the shape the
// mixed-profile e2e test serves.
func heartLayers() []LayerInfo {
	return []LayerInfo{
		{Name: "fc1", Muls: 13 * 16, Outs: 16, ReluFollows: true},
		{Name: "fc2", Muls: 16 * 8, Outs: 8, ReluFollows: true},
		{Name: "fc3", Muls: 8 * 2, Outs: 2, ReluFollows: false},
	}
}

func TestPlanPrivacyMaxAllPaillier(t *testing.T) {
	p, err := PlanFor(ProfilePrivacyMax, heartLayers(), 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for r, k := range p.Assignment {
		if k != PaillierHE {
			t.Fatalf("privacy-max round %d = %q", r, k)
		}
	}
}

func TestPlanMixedUsesAllThreeBackends(t *testing.T) {
	// The acceptance-critical shape: on the Heart model with the
	// boundary certified at round 2, the mixed profile must produce
	// [paillier-he, ss-gc, clear].
	p, err := PlanFor(ProfileMixed, heartLayers(), 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{PaillierHE, SSGC, Clear}
	for r, k := range p.Assignment {
		if k != want[r] {
			t.Fatalf("mixed assignment = %v, want %v", p.Assignment, want)
		}
	}
	if err := ValidateAssignment(ProfileMixed, p.Assignment, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPlanLatencyRespectsBoundary(t *testing.T) {
	// Boundary at 3 (= rounds): no clear anywhere, round 0 paillier.
	p, err := PlanFor(ProfileLatency, heartLayers(), 3, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if p.Assignment[0] != PaillierHE {
		t.Fatalf("round 0 = %q", p.Assignment[0])
	}
	for r, k := range p.Assignment {
		if k == Clear {
			t.Fatalf("clear at round %d despite boundary %d", r, p.Boundary)
		}
	}
	// Boundary 1: the whole suffix past round 0 may go clear.
	p, err = PlanFor(ProfileLatency, heartLayers(), 1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if p.Assignment[0] != PaillierHE {
		t.Fatalf("round 0 = %q", p.Assignment[0])
	}
	for r := 1; r < len(p.Assignment); r++ {
		if p.Assignment[r] != Clear {
			t.Fatalf("latency boundary-1 assignment = %v, want clear tail", p.Assignment)
		}
	}
}

func TestPlanBoundaryClamped(t *testing.T) {
	// Boundary 0 would let round 0 run clear; it must clamp to 1.
	p, err := PlanFor(ProfileLatency, heartLayers(), 0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if p.Assignment[0] != PaillierHE {
		t.Fatalf("clamp failed: round 0 = %q", p.Assignment[0])
	}
	if p.Boundary != 1 {
		t.Fatalf("boundary = %d, want 1", p.Boundary)
	}
	// Oversized boundary clamps to rounds.
	p, err = PlanFor(ProfileLatency, heartLayers(), 99, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if p.Boundary != 3 {
		t.Fatalf("boundary = %d, want 3", p.Boundary)
	}
}

func TestPlanCodesRoundTrip(t *testing.T) {
	p, err := PlanFor(ProfileMixed, heartLayers(), 2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	back, err := AssignmentFromCodes(p.Codes())
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range back {
		if k != p.Assignment[i] {
			t.Fatalf("codes round trip %v -> %v", p.Assignment, back)
		}
	}
	if _, err := AssignmentFromCodes([]int32{0, 7}); err == nil {
		t.Error("bad code accepted")
	}
}

func TestValidateAssignment(t *testing.T) {
	cases := []struct {
		name    string
		profile Profile
		plan    []Kind
		rounds  int
		ok      bool
	}{
		{"legacy", ProfilePrivacyMax, LegacyPlan(3), 3, true},
		{"mixed ok", ProfileMixed, []Kind{PaillierHE, SSGC, Clear}, 3, true},
		{"length", ProfileMixed, []Kind{PaillierHE}, 3, false},
		{"round0 ssgc", ProfileMixed, []Kind{SSGC, SSGC, Clear}, 3, false},
		{"round0 clear", ProfileLatency, []Kind{Clear, Clear, Clear}, 3, false},
		{"privacy-max violated", ProfilePrivacyMax, []Kind{PaillierHE, SSGC, PaillierHE}, 3, false},
		{"clear sandwich", ProfileLatency, []Kind{PaillierHE, Clear, SSGC}, 3, false},
		{"unknown kind", ProfileLatency, []Kind{PaillierHE, "rot13", Clear}, 3, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateAssignment(c.profile, c.plan, c.rounds)
			if (err == nil) != c.ok {
				t.Fatalf("err = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestParseProfile(t *testing.T) {
	if p, err := ParseProfile(""); err != nil || p != ProfilePrivacyMax {
		t.Fatalf("empty profile -> %q (%v), want privacy-max", p, err)
	}
	for _, p := range Profiles() {
		got, err := ParseProfile(string(p))
		if err != nil || got != p {
			t.Fatalf("profile %q round trip failed (%v)", p, err)
		}
	}
	if _, err := ParseProfile("turbo"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestEstimateCostOrdering(t *testing.T) {
	// Structural sanity of the cost model: clear < ss-gc < paillier at
	// every realistic layer size, and Paillier grows with key bits.
	shapes := []CostShape{
		{Muls: 16, Outs: 2, KeyBits: 2048, ReluFollows: false},
		{Muls: 208, Outs: 16, KeyBits: 2048, ReluFollows: true},
		{Muls: 100000, Outs: 4000, KeyBits: 2048, ReluFollows: true},
	}
	pb, _ := For(PaillierHE)
	sb, _ := For(SSGC)
	cb, _ := For(Clear)
	for _, cs := range shapes {
		p, s, c := pb.EstimateCost(cs), sb.EstimateCost(cs), cb.EstimateCost(cs)
		if !(c < s && s < p) {
			t.Fatalf("cost ordering broken at %+v: clear %v, ssgc %v, paillier %v", cs, c, s, p)
		}
	}
	small := pb.EstimateCost(CostShape{Muls: 100, Outs: 10, KeyBits: 1024})
	large := pb.EstimateCost(CostShape{Muls: 100, Outs: 10, KeyBits: 4096})
	if large <= small {
		t.Fatalf("paillier cost does not grow with key bits: %v vs %v", small, large)
	}
}
