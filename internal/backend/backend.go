// Package backend puts every way the serving plane can execute a linear
// round behind one interface. PP-Stream's original protocol runs all
// linear stages homomorphically under Paillier; this package promotes
// that path to one of three interchangeable LayerBackends:
//
//   - paillier-he — the paper's protocol: the model provider evaluates
//     the quantized stage over Paillier ciphertexts.
//   - ss-gc — additive secret sharing over Z_{2^64} with Beaver triples
//     for the linear stage (integer-exact, no truncation) and garbled-
//     circuit ReLU on the nonlinear side (half-gates, one OT extension
//     per layer). Both share-holders are modeled in-process with real
//     cost accounting — the same fidelity internal/baselines uses.
//   - clear — plaintext big-integer execution, permitted only for
//     rounds past the leakage-certified boundary (C2PI-style): the
//     stage input's distance correlation with the raw model input has
//     been measured below threshold, so skipping crypto there does not
//     expose the input.
//
// All three backends execute the SAME quantized integer arithmetic
// (internal/qnn), so their reconstructed outputs are bit-identical —
// the differential tests pin that property.
package backend

import (
	"fmt"
	"math/big"

	"ppstream/internal/obs"
	"ppstream/internal/paillier"
	"ppstream/internal/partition"
	"ppstream/internal/qnn"
	"ppstream/internal/secshare"
	"ppstream/internal/tensor"
)

// Kind names a layer-execution backend. The string forms appear in
// trace segment labels; the Code forms go on the wire.
type Kind string

const (
	// PaillierHE is the paper's homomorphic path.
	PaillierHE Kind = "paillier-he"
	// SSGC is additive secret sharing + garbled-circuit ReLU.
	SSGC Kind = "ss-gc"
	// Clear is plaintext execution past the certified boundary.
	Clear Kind = "clear"
)

// Kinds lists every backend in wire-code order.
func Kinds() []Kind { return []Kind{PaillierHE, SSGC, Clear} }

// Code returns the additive wire encoding of the kind. Zero is
// paillier-he so that absent fields from older peers decode to the
// original protocol.
func (k Kind) Code() int32 {
	switch k {
	case SSGC:
		return 1
	case Clear:
		return 2
	default:
		return 0
	}
}

// MetricName returns the kind's metrics-label form (dots and dashes are
// structure characters in metric names, so backends label with
// underscores: cost.paillier_he.modexps).
func (k Kind) MetricName() string {
	switch k {
	case SSGC:
		return "ss_gc"
	case Clear:
		return "clear"
	default:
		return "paillier_he"
	}
}

// KindFromCode decodes a wire code.
func KindFromCode(c int32) (Kind, error) {
	switch c {
	case 0:
		return PaillierHE, nil
	case 1:
		return SSGC, nil
	case 2:
		return Clear, nil
	default:
		return "", fmt.Errorf("backend: unknown backend code %d", c)
	}
}

// ParseKind parses the string form.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case PaillierHE, SSGC, Clear:
		return Kind(s), nil
	default:
		return "", fmt.Errorf("backend: unknown backend %q", s)
	}
}

// Payload is a round's activation tensor in the representation of its
// backend: exactly one of CT, Sh, Plain is set, all at scale F^Exp.
type Payload struct {
	Kind  Kind
	CT    *paillier.CipherTensor
	Sh    *tensor.Tensor[secshare.Shares]
	Plain *tensor.Tensor[*big.Int]
	Exp   int
}

// Shape returns the payload tensor's shape.
func (p *Payload) Shape() (tensor.Shape, error) {
	switch p.Kind {
	case PaillierHE:
		if p.CT == nil {
			return nil, fmt.Errorf("backend: paillier payload without ciphertexts")
		}
		return p.CT.Shape(), nil
	case SSGC:
		if p.Sh == nil {
			return nil, fmt.Errorf("backend: ss-gc payload without shares")
		}
		return p.Sh.Shape(), nil
	case Clear:
		if p.Plain == nil {
			return nil, fmt.Errorf("backend: clear payload without values")
		}
		return p.Plain.Shape(), nil
	default:
		return nil, fmt.Errorf("backend: payload has unknown kind %q", p.Kind)
	}
}

// Size returns the number of elements.
func (p *Payload) Size() (int, error) {
	s, err := p.Shape()
	if err != nil {
		return 0, err
	}
	return s.Size(), nil
}

// Reshape returns the payload viewing its elements under a new shape of
// the same size, whatever the representation.
func (p *Payload) Reshape(shape tensor.Shape) (*Payload, error) {
	out := &Payload{Kind: p.Kind, Exp: p.Exp}
	var err error
	switch p.Kind {
	case PaillierHE:
		if p.CT == nil {
			return nil, fmt.Errorf("backend: paillier payload without ciphertexts")
		}
		out.CT, err = p.CT.Reshape(shape...)
	case SSGC:
		if p.Sh == nil {
			return nil, fmt.Errorf("backend: ss-gc payload without shares")
		}
		out.Sh, err = p.Sh.Reshape(shape...)
	case Clear:
		if p.Plain == nil {
			return nil, fmt.Errorf("backend: clear payload without values")
		}
		out.Plain, err = p.Plain.Reshape(shape...)
	default:
		err = fmt.Errorf("backend: cannot reshape payload of kind %q", p.Kind)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stage describes one linear round's work for a backend: its op
// sequence, shapes, and the execution plan the pipeline chose.
type Stage struct {
	Ops              []qnn.Op
	InShape          tensor.Shape
	OutShape         tensor.Shape
	Threads          int
	InputPartition   bool
	UsePartitionExec bool
}

// ExecEnv carries the execution resources a backend may draw on. Eval
// is required by paillier-he, SS by ss-gc; Meter (optional) receives
// the non-Paillier cost accounting (the evaluator meters the Paillier
// path itself).
type ExecEnv struct {
	Eval    *paillier.Evaluator
	SS      *secshare.Engine
	Workers int
	Meter   *obs.CostMeter
}

// LayerBackend executes linear rounds under one crypto regime.
type LayerBackend interface {
	// Kind identifies the backend.
	Kind() Kind
	// Execute runs the stage over the payload, which must carry this
	// backend's representation, and returns the output payload at the
	// raised scale exponent.
	Execute(env *ExecEnv, st *Stage, in *Payload) (*Payload, error)
	// EstimateCost scores executing a layer of the given shape on this
	// backend, in comparable (arbitrary) units; the ILP minimizes it.
	EstimateCost(c CostShape) float64
}

// For returns the backend implementing a kind.
func For(k Kind) (LayerBackend, error) {
	switch k {
	case PaillierHE:
		return paillierBackend{}, nil
	case SSGC:
		return ssgcBackend{}, nil
	case Clear:
		return clearBackend{}, nil
	default:
		return nil, fmt.Errorf("backend: no implementation for kind %q", k)
	}
}

type paillierBackend struct{}

func (paillierBackend) Kind() Kind { return PaillierHE }

func (paillierBackend) Execute(env *ExecEnv, st *Stage, in *Payload) (*Payload, error) {
	if in.Kind != PaillierHE || in.CT == nil {
		return nil, fmt.Errorf("backend: paillier-he got %q payload", in.Kind)
	}
	if env.Eval == nil {
		return nil, fmt.Errorf("backend: paillier-he needs an evaluator")
	}
	var (
		out    *paillier.CipherTensor
		outExp int
		err    error
	)
	if st.UsePartitionExec {
		out, outExp, _, err = partition.ExecuteStage(env.Eval, st.Ops, in.CT, in.Exp, st.Threads, st.InputPartition)
	} else {
		out, outExp, err = qnn.ApplyStage(env.Eval, st.Ops, in.CT, in.Exp, env.Workers)
	}
	if err != nil {
		return nil, err
	}
	return &Payload{Kind: PaillierHE, CT: out, Exp: outExp}, nil
}

type ssgcBackend struct{}

func (ssgcBackend) Kind() Kind { return SSGC }

func (ssgcBackend) Execute(env *ExecEnv, st *Stage, in *Payload) (*Payload, error) {
	if in.Kind != SSGC || in.Sh == nil {
		return nil, fmt.Errorf("backend: ss-gc got %q payload", in.Kind)
	}
	if env.SS == nil {
		return nil, fmt.Errorf("backend: ss-gc needs a share engine")
	}
	before := env.SS.Stats
	out, outExp, err := qnn.ApplyStageShared(env.SS, st.Ops, in.Sh, in.Exp)
	if err != nil {
		return nil, err
	}
	if env.Meter != nil {
		env.Meter.Add(obs.CostStats{
			Triples:     uint64(env.SS.Stats.TriplesUsed - before.TriplesUsed),
			OpenedWords: uint64(env.SS.Stats.OpenedWords - before.OpenedWords),
		})
	}
	return &Payload{Kind: SSGC, Sh: out, Exp: outExp}, nil
}

type clearBackend struct{}

func (clearBackend) Kind() Kind { return Clear }

func (clearBackend) Execute(env *ExecEnv, st *Stage, in *Payload) (*Payload, error) {
	if in.Kind != Clear || in.Plain == nil {
		return nil, fmt.Errorf("backend: clear got %q payload", in.Kind)
	}
	out, outExp, err := qnn.ApplyStagePlain(st.Ops, in.Plain, in.Exp)
	if err != nil {
		return nil, err
	}
	if env.Meter != nil {
		var muls uint64
		shape := in.Plain.Shape()
		for _, op := range st.Ops {
			muls += uint64(qnn.MulCount(op, shape))
			if s, err := op.OutShape(shape); err == nil {
				shape = s
			}
		}
		env.Meter.Add(obs.CostStats{PlainOps: muls})
	}
	return &Payload{Kind: Clear, Plain: out, Exp: outExp}, nil
}
