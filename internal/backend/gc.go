package backend

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"

	"ppstream/internal/garble"
	"ppstream/internal/obs"
	"ppstream/internal/secshare"
)

// The garbled-circuit ReLU of the ss-gc backend, adapted from the EzPC
// baseline's arithmetic→boolean→arithmetic round trip: party 0 garbles
// the shared 64-bit ReLU circuit with its share and a fresh output mask
// as garbler inputs, party 1 obtains its input labels through one OT
// extension covering the whole layer, and the evaluated output bits
// plus the mask form fresh additive shares of ReLU(x). Exact on ring
// integers: ReLU over Z_{2^64} two's complement is a sign test, which
// commutes with descaling.

// gcRelu lazily builds the shared ReLU circuit and the base-OT key once
// per process — both are reusable across layers and sessions.
var gcRelu struct {
	once    sync.Once
	circuit *garble.Circuit
	ot      *garble.OT
	err     error
}

func gcReluInit() (*garble.Circuit, *garble.OT, error) {
	gcRelu.once.Do(func() {
		gcRelu.circuit, gcRelu.err = garble.ReLUShares()
		if gcRelu.err != nil {
			return
		}
		gcRelu.ot, gcRelu.err = garble.NewOT(256)
	})
	return gcRelu.circuit, gcRelu.ot, gcRelu.err
}

// GCReLUShares applies ReLU to a shared vector through half-gates
// garbled circuits, one OT extension for the layer, and returns fresh
// shares of the result. The meter (optional) receives the GC gate and
// extension-OT counts.
func GCReLUShares(x []secshare.Shares, meter *obs.CostMeter) ([]secshare.Shares, error) {
	if len(x) == 0 {
		return nil, nil
	}
	circuit, ot, err := gcReluInit()
	if err != nil {
		return nil, fmt.Errorf("backend: gc relu setup: %w", err)
	}

	// Party 1's choice bits for every element, gathered so one OT
	// extension serves the layer.
	choice := make([]bool, 0, len(x)*64)
	for _, s := range x {
		choice = append(choice, garble.Bits64(s.S[1])...)
	}
	sender, receiver, _, err := garble.NewOTExtension(ot, len(choice), choice)
	if err != nil {
		return nil, fmt.Errorf("backend: gc relu ot extension: %w", err)
	}

	var gates, extOTs uint64
	out := make([]secshare.Shares, len(x))
	for i, s := range x {
		g, err := garble.GarbleHG(circuit)
		if err != nil {
			return nil, fmt.Errorf("backend: gc relu garble: %w", err)
		}
		gates += uint64(circuit.ANDCount())
		r, err := randomMask()
		if err != nil {
			return nil, err
		}
		gl, err := g.GarblerLabels(append(garble.Bits64(s.S[0]), garble.Bits64(-r)...))
		if err != nil {
			return nil, fmt.Errorf("backend: gc relu labels: %w", err)
		}
		el := make([]garble.Label, 64)
		for b := 0; b < 64; b++ {
			idx := i*64 + b
			m0, m1, err := g.EvalLabelPair(b)
			if err != nil {
				return nil, err
			}
			y0, y1, err := sender.Transfer(idx, m0, m1)
			if err != nil {
				return nil, err
			}
			el[b], err = receiver.Receive(idx, y0, y1)
			if err != nil {
				return nil, err
			}
			extOTs++
		}
		bits, err := garble.EvaluateHG(circuit, g.Public(), gl, el)
		if err != nil {
			return nil, fmt.Errorf("backend: gc relu evaluate: %w", err)
		}
		out[i] = secshare.Shares{S: [2]uint64{r, garble.FromBits64(bits)}}
	}
	if meter != nil {
		meter.Add(obs.CostStats{GCGates: gates, ExtOTs: extOTs})
	}
	return out, nil
}

// randomMask draws party 0's fresh output mask from crypto/rand — the
// mask hides the circuit output from party 1, so it must be
// unpredictable.
func randomMask() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("backend: mask randomness: %w", err)
	}
	return binary.BigEndian.Uint64(b[:]), nil
}
