package backend

import (
	"fmt"

	"ppstream/internal/ilp"
)

// Profile names a deployment posture: which backends each round may
// use and how heavily privacy exposure weighs against execution cost.
type Profile string

const (
	// ProfileLatency minimizes pure execution cost within the safety
	// rules (round 0 always encrypted, clear only past the boundary).
	ProfileLatency Profile = "latency"
	// ProfilePrivacyMax runs every round under Paillier — the paper's
	// original protocol, unconditionally.
	ProfilePrivacyMax Profile = "privacy-max"
	// ProfileMixed trades cost against a privacy penalty proportional
	// to the values exposed to weaker-than-HE protection.
	ProfileMixed Profile = "mixed"
)

// Profiles lists the named deployment profiles.
func Profiles() []Profile { return []Profile{ProfileLatency, ProfilePrivacyMax, ProfileMixed} }

// ParseProfile parses a profile name; empty selects privacy-max (the
// legacy behavior — old clients that send no profile get the paper's
// protocol).
func ParseProfile(s string) (Profile, error) {
	switch Profile(s) {
	case "":
		return ProfilePrivacyMax, nil
	case ProfileLatency, ProfilePrivacyMax, ProfileMixed:
		return Profile(s), nil
	default:
		return "", fmt.Errorf("backend: unknown profile %q (want latency, privacy-max, or mixed)", s)
	}
}

// profileRank orders profiles by privacy strictness.
func profileRank(p Profile) int {
	switch p {
	case ProfilePrivacyMax:
		return 2
	case ProfileMixed:
		return 1
	default: // latency, and anything unknown treated as least strict
		return 0
	}
}

// Stricter returns the more privacy-protective of two profiles —
// session negotiation takes the stricter of the server's policy and the
// client's request, so neither side can weaken the other's posture.
func Stricter(a, b Profile) Profile {
	if profileRank(a) >= profileRank(b) {
		return a
	}
	return b
}

// mixedPenaltyWeight is λ for ProfileMixed.
const mixedPenaltyWeight = 0.5

// LayerInfo is the planner's view of one linear round.
type LayerInfo struct {
	Name string
	// Muls counts the round's non-zero weight multiplications.
	Muls int
	// Outs counts the round's output elements.
	Outs int
	// ReluFollows marks that the following nonlinear stage starts with
	// ReLU, so the ss-gc backend would run a garbled circuit there.
	ReluFollows bool
}

// Plan is a solved per-round backend assignment for one session.
type Plan struct {
	Profile    Profile
	Assignment []Kind
	// Boundary is the certified clear boundary used: the first round
	// allowed to run in the clear (len(Assignment) = none).
	Boundary int
	// Objective is the ILP objective achieved.
	Objective float64
}

// Codes encodes the assignment for the wire.
func (p *Plan) Codes() []int32 {
	out := make([]int32, len(p.Assignment))
	for i, k := range p.Assignment {
		out[i] = k.Code()
	}
	return out
}

// AssignmentFromCodes decodes a wire plan.
func AssignmentFromCodes(codes []int32) ([]Kind, error) {
	out := make([]Kind, len(codes))
	for i, c := range codes {
		k, err := KindFromCode(c)
		if err != nil {
			return nil, err
		}
		out[i] = k
	}
	return out, nil
}

// PlanFor solves the backend assignment for a session: one kind per
// linear round, minimizing estimated cost (plus the profile's privacy
// penalty) subject to the profile's allowed sets.
//
// Safety rules enforced regardless of profile: round 0 always runs
// paillier-he (the input itself must never leave the client
// unencrypted), clear is only allowed from the certified boundary
// onward, and the clear region is a contiguous suffix.
func PlanFor(profile Profile, layers []LayerInfo, boundary, keyBits int) (*Plan, error) {
	profile, err := ParseProfile(string(profile))
	if err != nil {
		return nil, err
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("backend: no layers to plan")
	}
	if boundary < 1 {
		boundary = 1
	}
	if boundary > len(layers) {
		boundary = len(layers)
	}
	kinds := Kinds()
	ilpLayers := make([]ilp.BackendLayer, len(layers))
	for l, info := range layers {
		cs := CostShape{Muls: info.Muls, Outs: info.Outs, KeyBits: keyBits, ReluFollows: info.ReluFollows}
		choices := make([]ilp.BackendChoice, len(kinds))
		for b, k := range kinds {
			be, err := For(k)
			if err != nil {
				return nil, err
			}
			c := ilp.BackendChoice{Name: string(k), Cost: be.EstimateCost(cs)}
			switch {
			case l == 0:
				c.Allowed = k == PaillierHE
			case profile == ProfilePrivacyMax:
				c.Allowed = k == PaillierHE
			case k == Clear:
				c.Allowed = l >= boundary
			default:
				c.Allowed = true
			}
			// The mixed profile's privacy penalty: each value handled
			// outside HE before the certified boundary costs penaltyPerOut.
			// Past the boundary the certification says the values carry no
			// usable information about the input, so no penalty applies.
			if profile == ProfileMixed && k != PaillierHE && l < boundary {
				c.Penalty = penaltyPerOut * float64(info.Outs)
			}
			choices[b] = c
		}
		ilpLayers[l] = ilp.BackendLayer{Name: info.Name, Choices: choices}
	}
	λ := 0.0
	if profile == ProfileMixed {
		λ = mixedPenaltyWeight
	}
	clearIdx := -1
	for b, k := range kinds {
		if k == Clear {
			clearIdx = b
		}
	}
	sol, err := ilp.AssignBackends(ilpLayers, ilp.AssignOptions{PenaltyWeight: λ, MonotoneSuffix: clearIdx})
	if err != nil {
		return nil, err
	}
	plan := &Plan{Profile: profile, Assignment: make([]Kind, len(layers)), Boundary: boundary, Objective: sol.Objective}
	for l, b := range sol.Chosen {
		plan.Assignment[l] = kinds[b]
	}
	return plan, nil
}

// ValidateAssignment checks a (possibly remote-supplied) assignment
// against the safety rules and the requested profile. Clients run this
// on the server's plan before honoring it.
func ValidateAssignment(profile Profile, assignment []Kind, rounds int) error {
	if len(assignment) != rounds {
		return fmt.Errorf("backend: plan covers %d rounds, session has %d", len(assignment), rounds)
	}
	if assignment[0] != PaillierHE {
		return fmt.Errorf("backend: plan runs round 0 on %q — the input must stay encrypted", assignment[0])
	}
	sawClear := false
	for r, k := range assignment {
		if _, err := For(k); err != nil {
			return err
		}
		if profile == ProfilePrivacyMax && k != PaillierHE {
			return fmt.Errorf("backend: privacy-max plan assigns %q to round %d", k, r)
		}
		if k == Clear {
			sawClear = true
		} else if sawClear {
			return fmt.Errorf("backend: clear round precedes %q round %d — clear must be a suffix", k, r)
		}
	}
	return nil
}

// LegacyPlan is the assignment used when the peer predates backend
// negotiation: every round on paillier-he, the original protocol.
func LegacyPlan(rounds int) []Kind {
	out := make([]Kind, rounds)
	for i := range out {
		out[i] = PaillierHE
	}
	return out
}
