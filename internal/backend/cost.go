package backend

// The per-backend cost model. Units are arbitrary but shared — roughly
// "one 64-bit multiply" — so the ILP can compare backends; absolute
// accuracy matters less than ordering, which ppbench backends measures
// against reality. The constants encode the structural facts:
//
//   - A Paillier weight-multiplication is a short modexp (weight-bits
//     modular multiplications over n²); every output additionally pays
//     a full-width re-randomization modexp, which dominates. Both scale
//     ~quadratically with key size.
//   - A Beaver-triple multiplication is a handful of native 64-bit
//     operations. The ss-gc backend's real expense is the garbled-
//     circuit ReLU that follows a linear round: a fixed base-OT setup
//     per layer plus per-element garbling and OT extensions.
//   - Clear execution is a big-integer multiply-accumulate per weight.
const (
	// paillierPerMul is one ciphertext^weight step at reference key size.
	paillierPerMul = 10
	// paillierPerOut is one output re-randomization at reference key size.
	paillierPerOut = 3000
	// ssgcPerMul is one Beaver-triple multiplication.
	ssgcPerMul = 0.1
	// ssgcPerOut is per-output share bookkeeping and reconstruction.
	ssgcPerOut = 5
	// gcSetup is the fixed base-OT setup of one garbled ReLU layer.
	gcSetup = 1500
	// gcPerElem is one element's 64-bit comparison circuit: garbling,
	// 64 extension OTs, evaluation.
	gcPerElem = 100
	// clearPerMul is one big-integer multiply-accumulate.
	clearPerMul = 0.02
	// referenceKeyBits anchors the key-size scaling factor.
	referenceKeyBits = 2048
	// penaltyPerOut prices one intermediate value exposed to weaker-
	// than-HE protection before the certified boundary (mixed profile).
	penaltyPerOut = 10
)

// CostShape is the size information the cost model consumes for one
// linear round.
type CostShape struct {
	// Muls counts non-zero weight multiplications.
	Muls int
	// Outs counts output elements.
	Outs int
	// KeyBits is the Paillier key size in bits.
	KeyBits int
	// ReluFollows marks a following ReLU stage (ss-gc pays GC there).
	ReluFollows bool
}

// keyFactor scales Paillier costs with key size (modular multiplication
// over n² is ~quadratic in the bit length for these sizes).
func keyFactor(keyBits int) float64 {
	if keyBits <= 0 {
		keyBits = referenceKeyBits
	}
	f := float64(keyBits) / referenceKeyBits
	return f * f
}

// EstimateCost implements LayerBackend.
func (paillierBackend) EstimateCost(c CostShape) float64 {
	return (paillierPerMul*float64(c.Muls) + paillierPerOut*float64(c.Outs)) * keyFactor(c.KeyBits)
}

// EstimateCost implements LayerBackend.
func (ssgcBackend) EstimateCost(c CostShape) float64 {
	cost := ssgcPerMul*float64(c.Muls) + ssgcPerOut*float64(c.Outs)
	if c.ReluFollows {
		cost += gcSetup + gcPerElem*float64(c.Outs)
	}
	return cost
}

// EstimateCost implements LayerBackend.
func (clearBackend) EstimateCost(c CostShape) float64 {
	return clearPerMul * float64(c.Muls)
}
