package backend

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"

	"ppstream/internal/nn"
	"ppstream/internal/obfuscate"
	"ppstream/internal/obs"
	"ppstream/internal/paillier"
	"ppstream/internal/qnn"
	"ppstream/internal/secshare"
	"ppstream/internal/tensor"
)

func TestKindCodesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := KindFromCode(k.Code())
		if err != nil || got != k {
			t.Errorf("code round trip %q -> %d -> %q (%v)", k, k.Code(), got, err)
		}
		p, err := ParseKind(string(k))
		if err != nil || p != k {
			t.Errorf("parse round trip %q (%v)", k, err)
		}
		if k.MetricName() == "" {
			t.Errorf("%q has no metric name", k)
		}
	}
	if PaillierHE.Code() != 0 {
		t.Error("paillier-he must encode as 0 so absent wire fields mean the legacy protocol")
	}
	if _, err := KindFromCode(99); err == nil {
		t.Error("unknown code accepted")
	}
	if _, err := ParseKind("rot13"); err == nil {
		t.Error("unknown kind accepted")
	}
}

// buildStage quantizes a small randomized FC stage.
func buildStage(t *testing.T, rng *mrand.Rand, in, out int, F int64) *Stage {
	t.Helper()
	fc := nn.NewFC("fc", in, out, rng)
	op, err := qnn.Quantize(fc, F)
	if err != nil {
		t.Fatal(err)
	}
	return &Stage{Ops: []qnn.Op{op}, InShape: tensor.Shape{in}, OutShape: tensor.Shape{out}, Threads: 1}
}

func bigInput(rng *mrand.Rand, F int64, n int) *tensor.Tensor[*big.Int] {
	x := tensor.Zeros(n)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	return tensor.Map(qnn.ScaleInput(x, F), func(v int64) *big.Int { return big.NewInt(v) })
}

// TestBackendsBitIdentical executes the same randomized stage on all
// three backends and demands bit-identical integer outputs — the
// differential guarantee the acceptance criteria pin.
func TestBackendsBitIdentical(t *testing.T) {
	const F = 100
	rng := mrand.New(mrand.NewSource(5))
	st := buildStage(t, rng, 8, 5, F)
	xb := bigInput(rng, F, 8)

	// Reference: the clear backend is literally ApplyStagePlain.
	var meter obs.CostMeter
	clearEnv := &ExecEnv{Meter: &meter}
	be, _ := For(Clear)
	ref, err := be.Execute(clearEnv, st, &Payload{Kind: Clear, Plain: xb, Exp: 1})
	if err != nil {
		t.Fatal(err)
	}
	if meter.Snapshot().PlainOps == 0 {
		t.Error("clear backend metered no plain ops")
	}

	// ss-gc: share, execute, reconstruct.
	eng := secshare.NewEngine(9)
	xs := tensor.New[secshare.Shares](8)
	for i, v := range xb.Data() {
		s, err := secshare.SplitRandom(rand.Reader, secshare.RingOfBig(v))
		if err != nil {
			t.Fatal(err)
		}
		xs.SetFlat(i, s)
	}
	var ssMeter obs.CostMeter
	be, _ = For(SSGC)
	got, err := be.Execute(&ExecEnv{SS: eng, Meter: &ssMeter}, st, &Payload{Kind: SSGC, Sh: xs, Exp: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Exp != ref.Exp {
		t.Fatalf("ss-gc exp %d, want %d", got.Exp, ref.Exp)
	}
	for i, s := range got.Sh.Data() {
		v := secshare.SignedOfRing(s.Reconstruct())
		if ref.Plain.Data()[i].Cmp(big.NewInt(v)) != 0 {
			t.Fatalf("ss-gc elem %d: %d != %s", i, v, ref.Plain.Data()[i])
		}
	}
	if ssMeter.Snapshot().Triples == 0 {
		t.Error("ss-gc backend metered no triples")
	}

	// paillier-he: encrypt, execute, decrypt.
	kp, err := paillier.GenerateKey(rand.Reader, 256)
	if err != nil {
		t.Fatal(err)
	}
	xi := tensor.Map(xb, func(v *big.Int) int64 { return v.Int64() })
	ct, err := paillier.EncryptTensor(&kp.PublicKey, rand.Reader, xi, 1)
	if err != nil {
		t.Fatal(err)
	}
	ev := paillier.NewEvaluator(&kp.PublicKey)
	be, _ = For(PaillierHE)
	enc, err := be.Execute(&ExecEnv{Eval: ev, Workers: 1}, st, &Payload{Kind: PaillierHE, CT: ct, Exp: 1})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := paillier.DecryptTensorBig(kp, enc.CT, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec.Data() {
		if ref.Plain.Data()[i].Cmp(v) != 0 {
			t.Fatalf("paillier elem %d: %s != %s", i, v, ref.Plain.Data()[i])
		}
	}
}

func TestExecuteRejectsWrongPayload(t *testing.T) {
	rng := mrand.New(mrand.NewSource(1))
	st := buildStage(t, rng, 3, 2, 100)
	for _, k := range Kinds() {
		be, err := For(k)
		if err != nil {
			t.Fatal(err)
		}
		wrong := &Payload{Kind: "bogus"}
		if _, err := be.Execute(&ExecEnv{}, st, wrong); err == nil {
			t.Errorf("%s accepted foreign payload", k)
		}
	}
	// Missing resources must error, not panic.
	be, _ := For(PaillierHE)
	if _, err := be.Execute(&ExecEnv{}, st, &Payload{Kind: PaillierHE, CT: tensor.New[*paillier.Ciphertext](3)}); err == nil {
		t.Error("paillier-he without evaluator accepted")
	}
	be, _ = For(SSGC)
	if _, err := be.Execute(&ExecEnv{}, st, &Payload{Kind: SSGC, Sh: tensor.New[secshare.Shares](3)}); err == nil {
		t.Error("ss-gc without engine accepted")
	}
}

// TestGCReLUSharesExact checks the garbled ReLU produces exact fresh
// shares of max(x, 0) over ring integers, and meters its work.
func TestGCReLUSharesExact(t *testing.T) {
	vals := []int64{0, 1, -1, 12345, -98765, 1 << 40, -(1 << 40)}
	xs := make([]secshare.Shares, len(vals))
	for i, v := range vals {
		s, err := secshare.SplitRandom(rand.Reader, secshare.RingOfBig(big.NewInt(v)))
		if err != nil {
			t.Fatal(err)
		}
		xs[i] = s
	}
	var meter obs.CostMeter
	out, err := GCReLUShares(xs, &meter)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		want := v
		if want < 0 {
			want = 0
		}
		if got := secshare.SignedOfRing(out[i].Reconstruct()); got != want {
			t.Fatalf("relu(%d) = %d, want %d", v, got, want)
		}
		// Fresh shares: the output sharing must differ from the input's.
		if out[i] == xs[i] {
			t.Fatalf("element %d output shares identical to input shares", i)
		}
	}
	st := meter.Snapshot()
	if st.GCGates == 0 || st.ExtOTs != uint64(64*len(vals)) {
		t.Fatalf("gc cost = %+v, want gates > 0 and %d ext OTs", st, 64*len(vals))
	}
	if empty, err := GCReLUShares(nil, nil); err != nil || empty != nil {
		t.Fatalf("empty input: %v, %v", empty, err)
	}
}

func TestPayloadPermuteRoundTrip(t *testing.T) {
	perm, err := obfuscate.NewRandom(6)
	if err != nil {
		t.Fatal(err)
	}
	shape := tensor.Shape{2, 3}
	plain := tensor.New[*big.Int](2, 3)
	for i := range plain.Data() {
		plain.SetFlat(i, big.NewInt(int64(i*i)))
	}
	p := &Payload{Kind: Clear, Plain: plain, Exp: 2}
	obf, err := p.ApplyPerm(perm)
	if err != nil {
		t.Fatal(err)
	}
	back, err := obf.InvertPerm(perm, shape)
	if err != nil {
		t.Fatal(err)
	}
	if back.Exp != 2 {
		t.Fatalf("exp lost: %d", back.Exp)
	}
	for i := range plain.Data() {
		if back.Plain.Data()[i].Cmp(plain.Data()[i]) != 0 {
			t.Fatalf("permute round trip broke element %d", i)
		}
	}
	sh := tensor.New[secshare.Shares](4)
	for i := range sh.Data() {
		sh.SetFlat(i, secshare.Shares{S: [2]uint64{uint64(i), uint64(100 + i)}})
	}
	perm4, _ := obfuscate.NewRandom(4)
	sp := &Payload{Kind: SSGC, Sh: sh, Exp: 1}
	obfS, err := sp.ApplyPerm(perm4)
	if err != nil {
		t.Fatal(err)
	}
	backS, err := obfS.InvertPerm(perm4, tensor.Shape{4})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range backS.Sh.Data() {
		if s != sh.Data()[i] {
			t.Fatalf("share permute round trip broke element %d", i)
		}
	}
	bad := &Payload{Kind: "bogus"}
	if _, err := bad.ApplyPerm(perm); err == nil {
		t.Error("unknown kind permuted")
	}
}

func TestPayloadShape(t *testing.T) {
	p := &Payload{Kind: Clear, Plain: tensor.New[*big.Int](2, 2)}
	s, err := p.Shape()
	if err != nil || s.Size() != 4 {
		t.Fatalf("shape %v (%v)", s, err)
	}
	if _, err := (&Payload{Kind: Clear}).Shape(); err == nil {
		t.Error("empty payload shape accepted")
	}
	if _, err := (&Payload{Kind: "x"}).Shape(); err == nil {
		t.Error("unknown kind shape accepted")
	}
}
