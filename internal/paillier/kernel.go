package paillier

// This file implements the model provider's homomorphic linear kernel as a
// two-phase layer evaluation (the exponentiation-dominated hot path of the
// paper's Figs. 1 and 9–11):
//
//  1. a per-input preprocessing pass (LinearKernel construction) computes
//     each ciphertext's n²-inverse at most ONCE and builds small windowed
//     power tables x_i^1..x_i^(2^w−1) (and the same for x_i^{-1} when any
//     row uses a negative weight), shared by every row of the layer;
//  2. a per-row pass (LinearKernel.Dot) evaluates Π_i E(m_i)^{w_i} with
//     interleaved multi-exponentiation (Shamir/Straus): the accumulator is
//     squared once per exponent bit for the WHOLE row rather than once per
//     bit per input, and each non-zero w-bit digit costs one table lookup
//     and one modular multiplication.
//
// Every row's output is re-randomized with a fresh r^n blinding factor
// before it leaves the kernel, so outputs are semantically-secure fresh
// encryptions even when a row's weights are all zero (previously such rows
// produced the deterministic embedding of the bias — a privacy bug) and
// are unlinkable to the input ciphertexts.

import (
	"fmt"
	"io"
	"math/big"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"ppstream/internal/obs"
)

// ColumnUse records how a linear layer uses one input column: whether any
// row multiplies it by a positive and/or a negative weight. The kernel
// builds only the power tables a column actually needs.
type ColumnUse uint8

const (
	// UsePos marks a column multiplied by at least one positive weight.
	UsePos ColumnUse = 1 << iota
	// UseNeg marks a column multiplied by at least one negative weight
	// (requires the ciphertext's n²-inverse).
	UseNeg
)

// WeightBits returns the bit length of |w|, safe for math.MinInt64.
func WeightBits(w int64) int { return bits.Len64(weightMagnitude(w)) }

// weightMagnitude returns |w| as a uint64, safe for math.MinInt64.
func weightMagnitude(w int64) uint64 {
	if w >= 0 {
		return uint64(w)
	}
	return uint64(-(w + 1)) + 1
}

// Blinder supplies r^n mod n² blinding factors for output
// re-randomization. Pool implements Blinder with precomputed factors;
// NewRandBlinder computes them inline.
type Blinder interface {
	Blinding() (*big.Int, error)
}

// trackedBlinder is the optional Blinder extension cost accounting uses:
// it additionally reports whether the factor came precomputed (a pool
// hit) or had to be exponentiated inline (a miss on the critical path).
// Pool implements it.
type trackedBlinder interface {
	BlindingTracked() (rn *big.Int, pooled bool, err error)
}

type randBlinder struct {
	pk     *PublicKey
	random io.Reader
}

// NewRandBlinder returns a Blinder that computes each factor inline from
// random (nil means crypto/rand.Reader). It is the fallback when no Pool
// is attached; each factor costs one full n-bit exponentiation.
func NewRandBlinder(pk *PublicKey, random io.Reader) Blinder {
	return randBlinder{pk: pk, random: random}
}

func (b randBlinder) Blinding() (*big.Int, error) { return b.pk.freshBlinding(b.random) }

// KernelMetrics receives kernel phase timings. Either callback may be
// nil. The protocol layer wires these to the "kernel.precompute" and
// "kernel.dot" histograms on the metrics endpoint.
type KernelMetrics struct {
	// Precompute observes one per-layer preprocessing pass.
	Precompute func(time.Duration)
	// Dot observes one per-row multi-exponentiation (including blinding).
	Dot func(time.Duration)
}

// Evaluator bundles the public key with the blinding supply and kernel
// configuration for model-provider-side homomorphic evaluation. A nil
// blinder defaults to inline crypto/rand factors; attach a Pool to move
// the blinding exponentiations off the critical path.
type Evaluator struct {
	pk      *PublicKey
	blinder Blinder
	window  uint
	metrics atomic.Pointer[KernelMetrics]
	// cost, when non-nil, accumulates the crypto-op counts of every kernel
	// and blinding operation run through this evaluator. Per-request
	// attribution derives a metered view with WithCost rather than mutating
	// a shared evaluator.
	cost *obs.CostMeter
}

// EvalOption configures an Evaluator.
type EvalOption func(*Evaluator)

// WithBlinder sets the blinding factor supply (e.g. a *Pool).
func WithBlinder(b Blinder) EvalOption { return func(ev *Evaluator) { ev.blinder = b } }

// WithWindow forces the multi-exponentiation window width (1..maxWindow);
// 0 keeps the per-layer automatic choice.
func WithWindow(w uint) EvalOption { return func(ev *Evaluator) { ev.window = w } }

// WithMetrics sets the kernel timing callbacks.
func WithMetrics(m KernelMetrics) EvalOption { return func(ev *Evaluator) { ev.metrics.Store(&m) } }

// WithCostMeter attaches a crypto-op cost meter at construction.
func WithCostMeter(m *obs.CostMeter) EvalOption { return func(ev *Evaluator) { ev.cost = m } }

// NewEvaluator creates an evaluator for the given public key.
func NewEvaluator(pk *PublicKey, opts ...EvalOption) *Evaluator {
	ev := &Evaluator{pk: pk}
	for _, o := range opts {
		o(ev)
	}
	if ev.blinder == nil {
		ev.blinder = NewRandBlinder(pk, nil)
	}
	return ev
}

// PublicKey returns the evaluator's key.
func (ev *Evaluator) PublicKey() *PublicKey { return ev.pk }

// SetMetrics replaces the kernel timing callbacks; safe to call while
// kernels are running.
func (ev *Evaluator) SetMetrics(m KernelMetrics) { ev.metrics.Store(&m) }

// WithCost derives an evaluator that shares this one's key, blinding
// supply, window, and timing callbacks but accumulates crypto-op counts
// into m. Sessions keep one shared evaluator and derive a metered view
// per request, so concurrent requests never bleed counts into each other.
func (ev *Evaluator) WithCost(m *obs.CostMeter) *Evaluator {
	d := &Evaluator{pk: ev.pk, blinder: ev.blinder, window: ev.window, cost: m}
	if km := ev.metrics.Load(); km != nil {
		d.metrics.Store(km)
	}
	return d
}

// CostMeter returns the attached cost meter, nil when unmetered.
func (ev *Evaluator) CostMeter() *obs.CostMeter {
	if ev == nil {
		return nil
	}
	return ev.cost
}

// Blinding returns one fresh r^n factor from the evaluator's supply,
// counting the re-randomization (and pool hit/miss) into the cost meter.
func (ev *Evaluator) Blinding() (*big.Int, error) {
	rn, pooled, err := ev.blinding()
	if err != nil {
		return nil, err
	}
	if ev.cost != nil {
		st := obs.CostStats{Rerands: 1}
		if pooled {
			st.PoolHits = 1
		} else {
			st.PoolMisses = 1
			st.ModExps = 1 // inline r^n exponentiation on the critical path
		}
		ev.cost.Add(st)
	}
	return rn, nil
}

// blinding draws one factor and reports whether it was precomputed.
func (ev *Evaluator) blinding() (*big.Int, bool, error) {
	if tb, ok := ev.blinder.(trackedBlinder); ok {
		return tb.BlindingTracked()
	}
	rn, err := ev.blinder.Blinding()
	return rn, false, err
}

// maxWindow bounds table memory: 2^6−1 entries per used side per input.
const maxWindow = 6

// pickWindow selects the window width minimizing the estimated modular
// multiplication count: rows·digits·(1−2^{−w}) digit-multiplies per row
// plus (2^w−2) table-build multiplies, amortized over the layer's rows.
// Squarings are ~maxBits per row regardless of w, so they do not affect
// the choice.
func pickWindow(rows, maxBits int) uint {
	if rows < 1 {
		rows = 1
	}
	if maxBits < 1 {
		maxBits = 1
	}
	best, bestCost := uint(1), float64(0)
	for w := 1; w <= maxWindow; w++ {
		digits := (maxBits + w - 1) / w
		nonZero := 1 - 1/float64(uint64(1)<<uint(w))
		cost := float64(rows)*float64(digits)*nonZero + float64(uint64(1)<<uint(w)-2)
		if w == 1 || cost < bestCost {
			best, bestCost = uint(w), cost
		}
	}
	return best
}

// LinearKernel holds the per-input preprocessing of one linear layer
// evaluation: shared inverses and windowed power tables over a fixed
// input ciphertext vector. It is safe for concurrent Dot calls.
type LinearKernel struct {
	ev     *Evaluator
	window uint
	mask   uint64
	// pos[i][d-1] = x_i^d mod n² for d = 1..2^window−1; nil when no row
	// uses column i with a positive weight. neg is the same over x_i^{-1}.
	pos [][]*big.Int
	neg [][]*big.Int
}

// NewLinearKernel runs the preprocessing phase over the layer's input
// ciphertexts: for every column i with use[i] != 0 it computes the
// n²-inverse (once, if needed) and the windowed power tables, in parallel
// across workers goroutines. rows and maxWeightBits size the automatic
// window choice; rows is the number of Dot calls that will share the
// tables.
func (ev *Evaluator) NewLinearKernel(xs []*Ciphertext, use []ColumnUse, rows, maxWeightBits, workers int) (*LinearKernel, error) {
	if len(use) != len(xs) {
		return nil, fmt.Errorf("paillier: kernel use list %d != inputs %d", len(use), len(xs))
	}
	start := time.Now()
	window := ev.window
	if window == 0 {
		window = pickWindow(rows, maxWeightBits)
	}
	if window > maxWindow {
		window = maxWindow
	}
	k := &LinearKernel{
		ev:     ev,
		window: window,
		mask:   uint64(1)<<window - 1,
		pos:    make([][]*big.Int, len(xs)),
		neg:    make([][]*big.Int, len(xs)),
	}
	tableLen := int(k.mask)
	n2 := ev.pk.N2
	var firstErr error
	var mu sync.Mutex
	parallelFor(len(xs), workers, func(i int) {
		u := use[i]
		if u == 0 {
			return
		}
		fail := func(err error) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		if xs[i] == nil || xs[i].c == nil {
			fail(fmt.Errorf("paillier: nil ciphertext at %d", i))
			return
		}
		if u&UsePos != 0 {
			k.pos[i] = powerTable(xs[i].c, tableLen, n2)
		}
		if u&UseNeg != 0 {
			inv := new(big.Int).ModInverse(xs[i].c, n2)
			if inv == nil {
				fail(fmt.Errorf("paillier: ciphertext %d not invertible", i))
				return
			}
			k.neg[i] = powerTable(inv, tableLen, n2)
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if ev.cost != nil {
		// The preprocessing cost is deterministic in the usage map: each
		// built table is tableLen−1 modular multiplications, each negative
		// side one modular inversion on top.
		var st obs.CostStats
		for _, u := range use {
			if u&UsePos != 0 {
				st.MulMods += uint64(tableLen - 1)
			}
			if u&UseNeg != 0 {
				st.ModInverses++
				st.MulMods += uint64(tableLen - 1)
			}
		}
		ev.cost.Add(st)
	}
	if m := ev.metrics.Load(); m != nil && m.Precompute != nil {
		m.Precompute(time.Since(start))
	}
	return k, nil
}

// powerTable returns [b, b², …, b^size] mod n².
func powerTable(b *big.Int, size int, n2 *big.Int) []*big.Int {
	t := make([]*big.Int, size)
	t[0] = new(big.Int).Set(b)
	for d := 1; d < size; d++ {
		p := new(big.Int).Mul(t[d-1], b)
		t[d] = p.Mod(p, n2)
	}
	return t
}

// Dot evaluates one row: the encryption of Σ_j w_j·m_{idx[j]} + bias,
// re-randomized with a fresh blinding factor. idx maps row positions to
// kernel input columns; a nil idx means position j reads column j (and
// then len(ws) must equal the kernel's input count). A nil or zero bias
// adds nothing.
func (k *LinearKernel) Dot(idx []int, ws []int64, bias *big.Int) (*Ciphertext, error) {
	if idx != nil && len(idx) != len(ws) {
		return nil, fmt.Errorf("paillier: dot index list %d != weights %d", len(idx), len(ws))
	}
	if idx == nil && len(ws) != len(k.pos) {
		return nil, fmt.Errorf("paillier: dot length mismatch: %d inputs vs %d weights", len(k.pos), len(ws))
	}
	start := time.Now()
	n2 := k.ev.pk.N2
	maxBits := 0
	for _, w := range ws {
		if b := WeightBits(w); b > maxBits {
			maxBits = b
		}
	}
	// st batches this row's op counts locally; one atomic Add into the
	// meter at the end keeps accounting off the hot path.
	var st obs.CostStats
	acc := big.NewInt(1)
	if maxBits > 0 {
		digits := (maxBits + int(k.window) - 1) / int(k.window)
		started := false
		for d := digits - 1; d >= 0; d-- {
			if started {
				for s := uint(0); s < k.window; s++ {
					acc.Mul(acc, acc)
					acc.Mod(acc, n2)
				}
				st.MulMods += uint64(k.window)
			}
			shift := uint(d) * k.window
			for j, w := range ws {
				if w == 0 {
					continue
				}
				dig := (weightMagnitude(w) >> shift) & k.mask
				if dig == 0 {
					continue
				}
				col := j
				if idx != nil {
					col = idx[j]
				}
				if col < 0 || col >= len(k.pos) {
					return nil, fmt.Errorf("paillier: dot column %d out of range [0,%d)", col, len(k.pos))
				}
				var tbl []*big.Int
				if w > 0 {
					tbl = k.pos[col]
				} else {
					tbl = k.neg[col]
				}
				if tbl == nil {
					return nil, fmt.Errorf("paillier: column %d has no power table for weight sign (ColumnUse mismatch)", col)
				}
				acc.Mul(acc, tbl[dig-1])
				acc.Mod(acc, n2)
				st.MulMods++
				started = true
			}
		}
	}
	if bias != nil && bias.Sign() != 0 {
		enc, err := k.ev.pk.encode(bias)
		if err != nil {
			return nil, err
		}
		t := new(big.Int).Mul(enc, k.ev.pk.N)
		t.Add(t, one)
		t.Mod(t, n2)
		acc.Mul(acc, t)
		acc.Mod(acc, n2)
		st.MulMods++
	}
	// Re-randomize: the product's randomness so far is only inherited from
	// the inputs (and is absent entirely for an all-zero row), so multiply
	// in a fresh r^n before the ciphertext leaves the model provider.
	rn, pooled, err := k.ev.blinding()
	if err != nil {
		return nil, err
	}
	acc.Mul(acc, rn)
	acc.Mod(acc, n2)
	st.MulMods++
	st.Rerands++
	if pooled {
		st.PoolHits++
	} else {
		st.PoolMisses++
		st.ModExps++
	}
	k.ev.cost.Add(st)
	if m := k.ev.metrics.Load(); m != nil && m.Dot != nil {
		m.Dot(time.Since(start))
	}
	return &Ciphertext{c: acc}, nil
}

// ScanColumnUse derives the per-column usage and the maximum weight bit
// length from a weight matrix whose rows align with the input vector
// (fully-connected layout).
func ScanColumnUse(w [][]int64, cols int) ([]ColumnUse, int, error) {
	use := make([]ColumnUse, cols)
	maxBits := 0
	for o, row := range w {
		if len(row) != cols {
			return nil, 0, fmt.Errorf("paillier: row %d length %d != input %d", o, len(row), cols)
		}
		for i, wv := range row {
			if wv == 0 {
				continue
			}
			if wv > 0 {
				use[i] |= UsePos
			} else {
				use[i] |= UseNeg
			}
			if b := WeightBits(wv); b > maxBits {
				maxBits = b
			}
		}
	}
	return use, maxBits, nil
}

// Dot evaluates a single homomorphic dot product Σ w_i·m_i + bias over
// the evaluator (one-row kernel: inverses are still computed at most once
// per input and squarings are shared across the whole row).
func (ev *Evaluator) Dot(xs []*Ciphertext, ws []int64, bias *big.Int) (*Ciphertext, error) {
	if len(xs) != len(ws) {
		return nil, fmt.Errorf("paillier: dot length mismatch: %d inputs vs %d weights", len(xs), len(ws))
	}
	use, maxBits, err := ScanColumnUse([][]int64{ws}, len(ws))
	if err != nil {
		return nil, err
	}
	k, err := ev.NewLinearKernel(xs, use, 1, maxBits, 1)
	if err != nil {
		return nil, err
	}
	return k.Dot(nil, ws, bias)
}

// MatVec evaluates an encrypted fully-connected layer through the
// two-phase kernel: one preprocessing pass over the input vector, then
// the rows in parallel, each output re-randomized.
func (ev *Evaluator) MatVec(w [][]int64, bias []int64, xs []*Ciphertext, workers int) ([]*Ciphertext, error) {
	outN := len(w)
	if bias != nil && len(bias) != outN {
		return nil, fmt.Errorf("paillier: bias length %d != rows %d", len(bias), outN)
	}
	use, maxBits, err := ScanColumnUse(w, len(xs))
	if err != nil {
		return nil, err
	}
	k, err := ev.NewLinearKernel(xs, use, outN, maxBits, workers)
	if err != nil {
		return nil, err
	}
	out := make([]*Ciphertext, outN)
	var firstErr error
	var mu sync.Mutex
	parallelFor(outN, workers, func(o int) {
		var b *big.Int
		if bias != nil && bias[o] != 0 {
			b = big.NewInt(bias[o])
		}
		ct, err := k.Dot(nil, w[o], b)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		out[o] = ct
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
