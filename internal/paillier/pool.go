package paillier

import (
	"crypto/rand"
	"io"
	"math/big"
	"sync"
)

// Pool precomputes encryption blinding factors r^n mod n² in background
// goroutines so that the latency-critical encryption path reduces to two
// modular multiplications. The data provider's re-encryption step
// (paper Fig. 3, step 2.3) sits on the inference critical path, so hiding
// the r^n exponentiation off-path is one of the practical optimizations
// the streaming design enables: blinding factors are produced while other
// pipeline stages run.
type Pool struct {
	pk      *PublicKey
	random  io.Reader
	ch      chan *big.Int
	closeCh chan struct{}
	wg      sync.WaitGroup
}

// NewPool starts workers goroutines filling a buffer of capacity size with
// fresh blinding factors. Close must be called to release the workers.
func NewPool(pk *PublicKey, random io.Reader, size, workers int) *Pool {
	if random == nil {
		random = rand.Reader
	}
	if size < 1 {
		size = 1
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		pk:      pk,
		random:  random,
		ch:      make(chan *big.Int, size),
		closeCh: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.fill()
	}
	return p
}

func (p *Pool) fill() {
	defer p.wg.Done()
	for {
		rn, err := p.pk.freshBlinding(p.random)
		if err != nil {
			return // crypto/rand failure: stop producing; Encrypt falls back
		}
		select {
		case p.ch <- rn:
		case <-p.closeCh:
			return
		}
	}
}

// Encrypt encrypts m using a pooled blinding factor when one is ready,
// falling back to computing one inline otherwise.
func (p *Pool) Encrypt(m *big.Int) (*Ciphertext, error) {
	select {
	case rn := <-p.ch:
		return p.pk.EncryptWithBlinding(m, rn)
	default:
		return p.pk.Encrypt(p.random, m)
	}
}

// EncryptInt64 encrypts a signed 64-bit message via the pool.
func (p *Pool) EncryptInt64(m int64) (*Ciphertext, error) {
	return p.Encrypt(big.NewInt(m))
}

// Close stops the background workers. Pending pooled factors are
// discarded.
func (p *Pool) Close() {
	close(p.closeCh)
	p.wg.Wait()
}
