package paillier

import (
	"crypto/rand"
	"io"
	"math/big"
	"sync"
	"sync/atomic"
	"time"
)

// Pool precomputes encryption blinding factors r^n mod n² in background
// goroutines so that the latency-critical encryption path reduces to two
// modular multiplications. The data provider's re-encryption step
// (paper Fig. 3, step 2.3) sits on the inference critical path, so hiding
// the r^n exponentiation off-path is one of the practical optimizations
// the streaming design enables: blinding factors are produced while other
// pipeline stages run. The model provider's linear kernel draws from the
// same supply to re-randomize its outputs (Pool implements Blinder).
type Pool struct {
	pk           *PublicKey
	random       io.Reader
	ch           chan *big.Int
	closeCh      chan struct{}
	wg           sync.WaitGroup
	alive        atomic.Int64
	retries      atomic.Uint64
	onPrecompute func(n uint64)
}

// PoolOption configures optional Pool behaviour at construction.
type PoolOption func(*Pool)

// WithPrecomputeHook registers fn to be called once per blinding factor
// the fill workers precompute in the background. Each precomputed factor
// costs one full r^n modular exponentiation that never shows up in any
// request's cost meter (it happens off-path, before the request that
// will consume it exists), so the serving plane uses this hook to charge
// those exponentiations into the process-wide "cost.modexps" counter —
// otherwise a warm pool makes the server's modexp accounting read zero
// while a fill worker burns CPU. fn is called from the fill goroutines
// and must be safe for concurrent use.
func WithPrecomputeHook(fn func(n uint64)) PoolOption {
	return func(p *Pool) { p.onPrecompute = fn }
}

// NewPool starts workers goroutines filling a buffer of capacity size with
// fresh blinding factors. Close must be called to release the workers.
func NewPool(pk *PublicKey, random io.Reader, size, workers int, opts ...PoolOption) *Pool {
	if random == nil {
		random = rand.Reader
	}
	if size < 1 {
		size = 1
	}
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		pk:      pk,
		random:  random,
		ch:      make(chan *big.Int, size),
		closeCh: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(p)
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		p.alive.Add(1)
		go p.fill()
	}
	return p
}

// fillBackoffStart is the first retry delay after a randomness read
// failure; it doubles up to fillBackoffMax.
const (
	fillBackoffStart = 5 * time.Millisecond
	fillBackoffMax   = time.Second
)

func (p *Pool) fill() {
	defer p.wg.Done()
	defer p.alive.Add(-1)
	backoff := fillBackoffStart
	for {
		rn, err := p.pk.freshBlinding(p.random)
		if err != nil {
			// Transient randomness failure: back off and retry instead of
			// exiting — a dead worker would silently degrade every future
			// Encrypt to the slow inline path for the pool's lifetime.
			p.retries.Add(1)
			select {
			case <-p.closeCh:
				return
			case <-time.After(backoff):
			}
			if backoff < fillBackoffMax {
				backoff *= 2
			}
			continue
		}
		backoff = fillBackoffStart
		if p.onPrecompute != nil {
			p.onPrecompute(1)
		}
		select {
		case p.ch <- rn:
		case <-p.closeCh:
			return
		}
	}
}

// AliveWorkers reports how many fill workers are currently running —
// exposed as the "pool.workers.alive" gauge. It equals the construction
// worker count until Close; a lower value indicates lost producers.
func (p *Pool) AliveWorkers() int64 { return p.alive.Load() }

// Retries reports how many randomness read failures the fill workers
// have retried.
func (p *Pool) Retries() uint64 { return p.retries.Load() }

// Blinding returns a precomputed r^n factor when one is ready, computing
// one inline otherwise. It implements Blinder for the linear kernel's
// output re-randomization.
func (p *Pool) Blinding() (*big.Int, error) {
	rn, _, err := p.BlindingTracked()
	return rn, err
}

// BlindingTracked is Blinding plus whether the factor was served
// precomputed (true) or exponentiated inline because the buffer was empty
// (false) — the hit/miss signal cost accounting records.
func (p *Pool) BlindingTracked() (*big.Int, bool, error) {
	select {
	case rn := <-p.ch:
		return rn, true, nil
	default:
		rn, err := p.pk.freshBlinding(p.random)
		return rn, false, err
	}
}

// Encrypt encrypts m using a pooled blinding factor when one is ready,
// falling back to computing one inline otherwise.
func (p *Pool) Encrypt(m *big.Int) (*Ciphertext, error) {
	ct, _, err := p.EncryptTracked(m)
	return ct, err
}

// EncryptTracked is Encrypt plus the pool hit/miss signal for cost
// accounting.
func (p *Pool) EncryptTracked(m *big.Int) (*Ciphertext, bool, error) {
	rn, pooled, err := p.BlindingTracked()
	if err != nil {
		return nil, false, err
	}
	ct, err := p.pk.EncryptWithBlinding(m, rn)
	return ct, pooled, err
}

// EncryptInt64 encrypts a signed 64-bit message via the pool.
func (p *Pool) EncryptInt64(m int64) (*Ciphertext, error) {
	return p.Encrypt(big.NewInt(m))
}

// Close stops the background workers. Pending pooled factors are
// discarded.
func (p *Pool) Close() {
	close(p.closeCh)
	p.wg.Wait()
}
