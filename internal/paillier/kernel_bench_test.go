package paillier

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"

	"ppstream/internal/obs"
)

// benchLayer builds a rows×cols layer with ~60% negative weights at
// 16–17-bit magnitudes — the post-scaling regime where the pre-kernel path
// pays one ModInverse per negative weight per row.
func benchLayer(b *testing.B, rows, cols int) (*PrivateKey, [][]int64, []int64, []*Ciphertext) {
	b.Helper()
	k := key(b)
	rng := mrand.New(mrand.NewSource(42))
	w := make([][]int64, rows)
	for o := range w {
		w[o] = make([]int64, cols)
		for i := range w[o] {
			mag := rng.Int63n(1<<17-1<<16) + 1<<16
			if rng.Intn(10) < 6 {
				mag = -mag
			}
			w[o][i] = mag
		}
	}
	bias := make([]int64, rows)
	for o := range bias {
		bias[o] = rng.Int63n(1 << 20)
	}
	xs := make([]*Ciphertext, cols)
	for i := range xs {
		ct, err := k.PublicKey.EncryptInt64(rand.Reader, rng.Int63n(2000)-1000)
		if err != nil {
			b.Fatal(err)
		}
		xs[i] = ct
	}
	return k, w, bias, xs
}

const (
	benchRows = 32
	benchCols = 128
)

// BenchmarkMatVecScaled measures the two-phase kernel (shared inverses +
// interleaved multi-exponentiation, blinded outputs).
func BenchmarkMatVecScaled(b *testing.B) {
	k, w, bias, xs := benchLayer(b, benchRows, benchCols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatVecScaled(&k.PublicKey, w, bias, xs, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatVecScaledPooled is the kernel with pooled blinding factors —
// the production configuration, where re-randomization is off-path.
func BenchmarkMatVecScaledPooled(b *testing.B) {
	k, w, bias, xs := benchLayer(b, benchRows, benchCols)
	p := NewPool(&k.PublicKey, rand.Reader, 2*benchRows*8, 2)
	defer p.Close()
	ev := NewEvaluator(&k.PublicKey, WithBlinder(p))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.MatVec(w, bias, xs, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatVecScaledRef is the pre-kernel row-by-row baseline
// (per-weight exponentiations, inverses recomputed per row, unblinded).
func BenchmarkMatVecScaledRef(b *testing.B) {
	k, w, bias, xs := benchLayer(b, benchRows, benchCols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatVecScaledRef(&k.PublicKey, w, bias, xs, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelPrecompute isolates the preprocessing phase: inverses and
// windowed power tables over the input vector.
func BenchmarkKernelPrecompute(b *testing.B) {
	k, w, _, xs := benchLayer(b, benchRows, benchCols)
	ev := NewEvaluator(&k.PublicKey)
	use, maxBits, err := ScanColumnUse(w, benchCols)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.NewLinearKernel(xs, use, benchRows, maxBits, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelDot isolates one row's interleaved multi-exponentiation
// over a prebuilt kernel (includes output blinding).
func BenchmarkKernelDot(b *testing.B) {
	k, w, bias, xs := benchLayer(b, benchRows, benchCols)
	ev := NewEvaluator(&k.PublicKey)
	use, maxBits, err := ScanColumnUse(w, benchCols)
	if err != nil {
		b.Fatal(err)
	}
	kern, err := ev.NewLinearKernel(xs, use, benchRows, maxBits, 1)
	if err != nil {
		b.Fatal(err)
	}
	bg := big.NewInt(bias[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kern.Dot(nil, w[0], bg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatVecScaledMetered is BenchmarkMatVecScaledPooled with a cost
// meter attached — compare the two to measure the accounting overhead
// (acceptance bound: < 2%).
func BenchmarkMatVecScaledMetered(b *testing.B) {
	k, w, bias, xs := benchLayer(b, benchRows, benchCols)
	p := NewPool(&k.PublicKey, rand.Reader, 2*benchRows*8, 2)
	defer p.Close()
	var m obs.CostMeter
	ev := NewEvaluator(&k.PublicKey, WithBlinder(p), WithCostMeter(&m))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.MatVec(w, bias, xs, 1); err != nil {
			b.Fatal(err)
		}
	}
}
