package paillier

import (
	"bytes"
	"testing"
)

// FuzzPaillierSerializeRoundTrip feeds adversarial bytes to the key
// loaders: they must never panic (the serialized key formats cross
// trust boundaries at session setup), and any key they accept must
// survive a save/load round trip unchanged.
func FuzzPaillierSerializeRoundTrip(f *testing.F) {
	sk, err := GenerateKey(nil, 128)
	if err != nil {
		f.Fatal(err)
	}
	var pubBuf, privBuf bytes.Buffer
	if err := SavePublicKey(&sk.PublicKey, &pubBuf); err != nil {
		f.Fatal(err)
	}
	if err := SavePrivateKey(sk, &privBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(pubBuf.Bytes())
	f.Add(privBuf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Bound the factor size so primality testing of adversarial
		// "primes" stays cheap.
		if len(data) > 512 {
			return
		}
		if pk, err := LoadPublicKey(bytes.NewReader(data)); err == nil {
			var out bytes.Buffer
			if err := SavePublicKey(pk, &out); err != nil {
				t.Fatalf("re-saving accepted public key: %v", err)
			}
			pk2, err := LoadPublicKey(&out)
			if err != nil {
				t.Fatalf("re-loading saved public key: %v", err)
			}
			if pk2.N.Cmp(pk.N) != 0 {
				t.Fatalf("public key round trip changed n: %v != %v", pk2.N, pk.N)
			}
		}
		if sk2, err := LoadPrivateKey(bytes.NewReader(data)); err == nil {
			var out bytes.Buffer
			if err := SavePrivateKey(sk2, &out); err != nil {
				t.Fatalf("re-saving accepted private key: %v", err)
			}
			sk3, err := LoadPrivateKey(&out)
			if err != nil {
				t.Fatalf("re-loading saved private key: %v", err)
			}
			if sk3.N.Cmp(sk2.N) != 0 || sk3.P.Cmp(sk2.P) != 0 || sk3.Q.Cmp(sk2.Q) != 0 {
				t.Fatal("private key round trip changed key material")
			}
		}
	})
}
