package paillier

import (
	"math/big"
	"testing"

	"ppstream/internal/obs"
)

// fakeTracked is a Blinder whose hit/miss signal is fixed, making the
// accounting assertions deterministic (a live Pool's hit rate depends on
// fill-worker timing).
type fakeTracked struct {
	pk     *PublicKey
	pooled bool
}

func (f fakeTracked) Blinding() (*big.Int, error) {
	rn, _, err := f.BlindingTracked()
	return rn, err
}

func (f fakeTracked) BlindingTracked() (*big.Int, bool, error) {
	rn, err := f.pk.freshBlinding(nil)
	return rn, f.pooled, err
}

// TestKernelCostExactCounts pins the kernel's deterministic op accounting
// for a fixed window: table builds, inverses, digit multiplies, bias and
// blinding applications.
func TestKernelCostExactCounts(t *testing.T) {
	k := key(t)
	var m obs.CostMeter
	ev := NewEvaluator(&k.PublicKey, WithWindow(2), WithCostMeter(&m))

	xs := encryptVec(t, k, []int64{4, 7})
	// ws = [3, −1]: column 0 positive, column 1 negative; maxBits = 2 so a
	// window-2 evaluation is a single digit round with no squarings.
	ct, err := ev.Dot(xs, []int64{3, -1}, big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := k.DecryptInt64(ct); err != nil || got != 3*4-7+5 {
		t.Fatalf("dot = %d, %v; want 10", got, err)
	}

	st := m.Snapshot()
	// Precompute: tableLen = 2²−1 = 3, so 2 mulmods per built table; one
	// positive table + one negative table + 1 inverse.
	// Dot: 2 digit multiplies + 1 bias fold + 1 blinding apply = 4 mulmods,
	// plus 1 rerand that missed (randBlinder) = 1 modexp.
	want := obs.CostStats{
		ModExps:     1,
		MulMods:     2 + 2 + 4,
		ModInverses: 1,
		Rerands:     1,
		PoolMisses:  1,
	}
	if st != want {
		t.Fatalf("cost = %+v, want %+v", st, want)
	}
}

// TestKernelCostSquarings checks the shared-squaring count: a multi-digit
// weight costs window squarings per non-leading digit round, once for the
// whole row.
func TestKernelCostSquarings(t *testing.T) {
	k := key(t)
	var m obs.CostMeter
	ev := NewEvaluator(&k.PublicKey, WithWindow(2), WithCostMeter(&m))

	xs := encryptVec(t, k, []int64{2})
	// w = 13 = 0b1101: maxBits 4, window 2 → 2 digit rounds → one squaring
	// block of 2; digits are 0b11 and 0b01, both non-zero → 2 multiplies.
	ct, err := ev.Dot(xs, []int64{13}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := k.DecryptInt64(ct); err != nil || got != 26 {
		t.Fatalf("dot = %d, %v; want 26", got, err)
	}
	st := m.Snapshot()
	// Precompute: one positive table, 2 mulmods. Dot: 2 squarings + 2 digit
	// multiplies + 1 blinding apply = 5.
	if st.MulMods != 2+5 {
		t.Fatalf("mulmods = %d, want 7 (%+v)", st.MulMods, st)
	}
	if st.ModInverses != 0 {
		t.Fatalf("modinverses = %d, want 0", st.ModInverses)
	}
}

// TestWithCostIsolation derives two metered views from one shared
// evaluator and checks their counts stay separate — the per-request
// attribution property the session layer relies on.
func TestWithCostIsolation(t *testing.T) {
	k := key(t)
	base := NewEvaluator(&k.PublicKey, WithWindow(2))
	var m1, m2 obs.CostMeter
	ev1, ev2 := base.WithCost(&m1), base.WithCost(&m2)

	xs := encryptVec(t, k, []int64{1, 2, 3})
	if _, err := ev1.Dot(xs, []int64{1, 1, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ev2.Dot(xs, []int64{1, 0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	st1, st2 := m1.Snapshot(), m2.Snapshot()
	if st1.IsZero() || st2.IsZero() {
		t.Fatalf("derived meters empty: %+v / %+v", st1, st2)
	}
	if st1 == st2 {
		t.Fatalf("different workloads produced identical counts: %+v", st1)
	}
	if base.CostMeter() != nil {
		t.Fatal("base evaluator must stay unmetered")
	}
	if ev1.CostMeter() != &m1 || ev2.CostMeter() != &m2 {
		t.Fatal("derived evaluators must expose their own meters")
	}
}

// TestBlindingCostHitMiss checks that pool hits and misses are attributed
// correctly through Evaluator.Blinding.
func TestBlindingCostHitMiss(t *testing.T) {
	k := key(t)
	for _, pooled := range []bool{true, false} {
		var m obs.CostMeter
		ev := NewEvaluator(&k.PublicKey,
			WithBlinder(fakeTracked{pk: &k.PublicKey, pooled: pooled}),
			WithCostMeter(&m))
		if _, err := ev.Blinding(); err != nil {
			t.Fatal(err)
		}
		st := m.Snapshot()
		if st.Rerands != 1 {
			t.Fatalf("pooled=%v: rerands = %d, want 1", pooled, st.Rerands)
		}
		if pooled && (st.PoolHits != 1 || st.PoolMisses != 0 || st.ModExps != 0) {
			t.Fatalf("pooled hit miscounted: %+v", st)
		}
		if !pooled && (st.PoolHits != 0 || st.PoolMisses != 1 || st.ModExps != 1) {
			t.Fatalf("inline miss miscounted: %+v", st)
		}
	}
}

// TestPoolTrackedAPIs exercises the Pool's tracked variants directly.
func TestPoolTrackedAPIs(t *testing.T) {
	k := key(t)
	p := NewPool(&k.PublicKey, nil, 4, 1)
	defer p.Close()

	// Drain until we observe at least one pooled factor — the fill worker
	// is running, so this terminates.
	sawHit := false
	for i := 0; i < 200 && !sawHit; i++ {
		_, pooled, err := p.BlindingTracked()
		if err != nil {
			t.Fatal(err)
		}
		sawHit = sawHit || pooled
	}
	if !sawHit {
		t.Fatal("never observed a pooled blinding factor")
	}

	ct, _, err := p.EncryptTracked(big.NewInt(42))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := k.DecryptInt64(ct); err != nil || got != 42 {
		t.Fatalf("EncryptTracked round-trip = %d, %v; want 42", got, err)
	}
}

// TestMatVecMeteredMatchesUnmetered guards the metered path's outputs:
// attaching a meter must not change results.
func TestMatVecMeteredMatchesUnmetered(t *testing.T) {
	k := key(t)
	var m obs.CostMeter
	ev := NewEvaluator(&k.PublicKey, WithCostMeter(&m))
	xs := encryptVec(t, k, []int64{5, -3, 2})
	w := [][]int64{{2, -1, 0}, {0, 4, -7}}
	bias := []int64{1, -1}
	out, err := ev.MatVec(w, bias, xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2*5 - (-3) + 1, 4*(-3) - 7*2 - 1}
	for o, ct := range out {
		got, err := k.DecryptInt64(ct)
		if err != nil || got != want[o] {
			t.Fatalf("row %d = %d, %v; want %d", o, got, err, want[o])
		}
	}
	st := m.Snapshot()
	if st.Rerands != 2 || st.MulMods == 0 {
		t.Fatalf("matvec accounting looks wrong: %+v", st)
	}
}
