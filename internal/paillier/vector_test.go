package paillier

import (
	"crypto/rand"
	"testing"

	"ppstream/internal/tensor"
)

func TestEncryptDecryptTensorRoundTrip(t *testing.T) {
	k := key(t)
	in := tensor.MustFromSlice([]int64{1, -2, 3, -4, 5, 0}, 2, 3)
	ct, err := EncryptTensor(&k.PublicKey, rand.Reader, in, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ct.Shape().Equal(in.Shape()) {
		t.Fatalf("ciphertext shape %v", ct.Shape())
	}
	out, err := DecryptTensor(k, ct, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range in.Data() {
		if out.AtFlat(i) != v {
			t.Errorf("round trip at %d: %d -> %d", i, v, out.AtFlat(i))
		}
	}
}

func TestDecryptTensorNilElement(t *testing.T) {
	k := key(t)
	ct := tensor.New[*Ciphertext](2)
	if _, err := DecryptTensor(k, ct, 1); err == nil {
		t.Error("nil ciphertext element accepted")
	}
}

// TestDotScaled verifies the encrypted linear operation of paper Eq. (3):
// Σ w_i·m_i + b computed as Π E(m_i)^{w_i}·E(b).
func TestDotScaled(t *testing.T) {
	k := key(t)
	ms := []int64{3, -1, 4, 1, -5}
	ws := []int64{2, 7, -1, 8, 2}
	const bias = 11
	xs := make([]*Ciphertext, len(ms))
	for i, m := range ms {
		var err error
		xs[i], err = k.PublicKey.EncryptInt64(rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
	}
	ct, err := DotScaled(&k.PublicKey, xs, ws, bias)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.DecryptInt64(ct)
	if err != nil {
		t.Fatal(err)
	}
	var want int64 = bias
	for i := range ms {
		want += ws[i] * ms[i]
	}
	if got != want {
		t.Errorf("DotScaled = %d, want %d", got, want)
	}
}

func TestDotScaledErrors(t *testing.T) {
	k := key(t)
	x, _ := k.PublicKey.EncryptInt64(rand.Reader, 1)
	if _, err := DotScaled(&k.PublicKey, []*Ciphertext{x}, []int64{1, 2}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := DotScaled(&k.PublicKey, []*Ciphertext{nil}, []int64{1}, 0); err == nil {
		t.Error("nil ciphertext accepted")
	}
}

func TestDotScaledAllZeroWeights(t *testing.T) {
	k := key(t)
	x, _ := k.PublicKey.EncryptInt64(rand.Reader, 123)
	ct, err := DotScaled(&k.PublicKey, []*Ciphertext{x}, []int64{0}, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := k.DecryptInt64(ct)
	if got != 9 {
		t.Errorf("zero-weight dot = %d, want 9", got)
	}
}

func TestMatVecScaled(t *testing.T) {
	k := key(t)
	w := [][]int64{{1, 2}, {-3, 4}, {0, 0}}
	bias := []int64{10, -20, 5}
	ms := []int64{7, -6}
	xs := make([]*Ciphertext, len(ms))
	for i, m := range ms {
		xs[i], _ = k.PublicKey.EncryptInt64(rand.Reader, m)
	}
	out, err := MatVecScaled(&k.PublicKey, w, bias, xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1*7 + 2*(-6) + 10, -3*7 + 4*(-6) - 20, 5}
	for o, wv := range want {
		got, err := k.DecryptInt64(out[o])
		if err != nil {
			t.Fatal(err)
		}
		if got != wv {
			t.Errorf("row %d = %d, want %d", o, got, wv)
		}
	}
	if _, err := MatVecScaled(&k.PublicKey, w, []int64{1}, xs, 1); err == nil {
		t.Error("bias length mismatch accepted")
	}
	if _, err := MatVecScaled(&k.PublicKey, [][]int64{{1}}, nil, xs, 1); err == nil {
		t.Error("row length mismatch accepted")
	}
}

func TestPoolEncrypt(t *testing.T) {
	k := key(t)
	p := NewPool(&k.PublicKey, rand.Reader, 8, 2)
	defer p.Close()
	for _, m := range []int64{0, 5, -9, 1 << 20} {
		ct, err := p.EncryptInt64(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.DecryptInt64(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got != m {
			t.Errorf("pool round trip %d -> %d", m, got)
		}
	}
}

func TestParallelForCoversAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 100} {
		n := 57
		hits := make([]int32, n)
		parallelFor(n, workers, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d index %d hit %d times", workers, i, h)
			}
		}
	}
	// n = 0 must not panic.
	parallelFor(0, 4, func(int) { t.Fatal("called for empty range") })
}
