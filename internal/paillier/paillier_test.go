package paillier

import (
	"crypto/rand"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// testKeyBits keeps unit tests fast; correctness is independent of size.
const testKeyBits = 256

var (
	testKeyOnce sync.Once
	testKey     *PrivateKey
)

func key(t testing.TB) *PrivateKey {
	testKeyOnce.Do(func() {
		k, err := GenerateKey(rand.Reader, testKeyBits)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	})
	return testKey
}

func TestGenerateKeyValidation(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 64); err == nil {
		t.Error("tiny key accepted")
	}
	if _, err := GenerateKey(rand.Reader, 129); err == nil {
		t.Error("odd key size accepted")
	}
	k := key(t)
	if err := k.PublicKey.Validate(); err != nil {
		t.Errorf("generated key invalid: %v", err)
	}
	if k.Bits() != testKeyBits {
		t.Errorf("Bits = %d, want %d", k.Bits(), testKeyBits)
	}
}

func TestPublicKeyValidate(t *testing.T) {
	var nilPk *PublicKey
	if err := nilPk.Validate(); err == nil {
		t.Error("nil key accepted")
	}
	k := key(t)
	bad := &PublicKey{N: k.N, N2: new(big.Int).Add(k.N2, one)}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched N² accepted")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := key(t)
	for _, m := range []int64{0, 1, -1, 42, -99999, 1 << 40, -(1 << 40)} {
		ct, err := k.PublicKey.EncryptInt64(rand.Reader, m)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := k.DecryptInt64(ct)
		if err != nil {
			t.Fatalf("Decrypt(%d): %v", m, err)
		}
		if got != m {
			t.Errorf("round trip %d -> %d", m, got)
		}
	}
}

func TestEncryptRejectsOversizedMessage(t *testing.T) {
	k := key(t)
	huge := new(big.Int).Rsh(k.N, 1) // exactly n/2: must be rejected
	if _, err := k.PublicKey.Encrypt(rand.Reader, huge); err == nil {
		t.Error("message of magnitude n/2 accepted")
	}
}

func TestEncryptionIsProbabilistic(t *testing.T) {
	k := key(t)
	a, _ := k.PublicKey.EncryptInt64(rand.Reader, 7)
	b, _ := k.PublicKey.EncryptInt64(rand.Reader, 7)
	if a.Value().Cmp(b.Value()) == 0 {
		t.Error("two encryptions of the same message are identical — semantic security broken")
	}
}

// TestHomomorphicAdd verifies paper Eq. (1): m1+m2 = D(E(m1)·E(m2)).
func TestHomomorphicAdd(t *testing.T) {
	k := key(t)
	cases := [][2]int64{{3, 4}, {-5, 9}, {-7, -8}, {0, 123}, {1 << 30, 1 << 30}}
	for _, c := range cases {
		e1, _ := k.PublicKey.EncryptInt64(rand.Reader, c[0])
		e2, _ := k.PublicKey.EncryptInt64(rand.Reader, c[1])
		sum := k.PublicKey.Add(e1, e2)
		got, err := k.DecryptInt64(sum)
		if err != nil {
			t.Fatal(err)
		}
		if got != c[0]+c[1] {
			t.Errorf("Add(%d,%d) = %d", c[0], c[1], got)
		}
	}
}

// TestHomomorphicMulScalar verifies paper Eq. (2): w·m = D(E(m)^w),
// including negative weights.
func TestHomomorphicMulScalar(t *testing.T) {
	k := key(t)
	cases := [][2]int64{{3, 4}, {-5, 9}, {7, -8}, {-3, -11}, {0, 5}, {5, 0}, {1000000, 123}}
	for _, c := range cases {
		w, m := c[0], c[1]
		e, _ := k.PublicKey.EncryptInt64(rand.Reader, m)
		prod, err := k.PublicKey.MulScalarInt64(e, w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.DecryptInt64(prod)
		if err != nil {
			t.Fatal(err)
		}
		if got != w*m {
			t.Errorf("MulScalar(%d,%d) = %d, want %d", w, m, got, w*m)
		}
	}
}

func TestAddPlain(t *testing.T) {
	k := key(t)
	e, _ := k.PublicKey.EncryptInt64(rand.Reader, 10)
	for _, add := range []int64{5, -3, 0} {
		c, err := k.PublicKey.AddPlain(e, big.NewInt(add))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := k.DecryptInt64(c)
		if got != 10+add {
			t.Errorf("AddPlain(10,%d) = %d", add, got)
		}
	}
}

func TestRerandomize(t *testing.T) {
	k := key(t)
	e, _ := k.PublicKey.EncryptInt64(rand.Reader, 77)
	r, err := k.PublicKey.Rerandomize(rand.Reader, e)
	if err != nil {
		t.Fatal(err)
	}
	if r.Value().Cmp(e.Value()) == 0 {
		t.Error("rerandomized ciphertext identical to input")
	}
	got, _ := k.DecryptInt64(r)
	if got != 77 {
		t.Errorf("rerandomize changed plaintext: %d", got)
	}
}

func TestNewCiphertextFromValue(t *testing.T) {
	k := key(t)
	e, _ := k.PublicKey.EncryptInt64(rand.Reader, 5)
	ct, err := NewCiphertextFromValue(e.Value(), &k.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := k.DecryptInt64(ct)
	if got != 5 {
		t.Errorf("reconstructed ciphertext decrypts to %d", got)
	}
	if _, err := NewCiphertextFromValue(nil, &k.PublicKey); err == nil {
		t.Error("nil value accepted")
	}
	if _, err := NewCiphertextFromValue(new(big.Int).Neg(one), &k.PublicKey); err == nil {
		t.Error("negative value accepted")
	}
	if _, err := NewCiphertextFromValue(k.N2, &k.PublicKey); err == nil {
		t.Error("value ≥ n² accepted")
	}
}

func TestDecryptRejectsBadInput(t *testing.T) {
	k := key(t)
	if _, err := k.Decrypt(nil); err == nil {
		t.Error("nil ciphertext accepted")
	}
	if _, err := k.Decrypt(&Ciphertext{c: new(big.Int).Set(k.N2)}); err == nil {
		t.Error("out-of-range ciphertext accepted")
	}
}

func TestNewPrivateKeyFromPrimes(t *testing.T) {
	k := key(t)
	k2, err := NewPrivateKeyFromPrimes(k.P, k.Q)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := k.PublicKey.EncryptInt64(rand.Reader, 31337)
	got, err := k2.DecryptInt64(e)
	if err != nil || got != 31337 {
		t.Errorf("reconstructed key decrypts to %d (%v)", got, err)
	}
	if _, err := NewPrivateKeyFromPrimes(k.P, k.P); err == nil {
		t.Error("p == q accepted")
	}
	if _, err := NewPrivateKeyFromPrimes(big.NewInt(10), k.Q); err == nil {
		t.Error("composite factor accepted")
	}
}

// Property test: the additive homomorphism holds on random int32 pairs.
func TestHomomorphismProperty(t *testing.T) {
	k := key(t)
	f := func(a, b int32) bool {
		ea, err := k.PublicKey.EncryptInt64(rand.Reader, int64(a))
		if err != nil {
			return false
		}
		eb, err := k.PublicKey.EncryptInt64(rand.Reader, int64(b))
		if err != nil {
			return false
		}
		sum, err := k.DecryptInt64(k.PublicKey.Add(ea, eb))
		if err != nil {
			return false
		}
		return sum == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property test: scalar multiplication matches plaintext arithmetic.
func TestScalarMulProperty(t *testing.T) {
	k := key(t)
	f := func(w, m int16) bool {
		e, err := k.PublicKey.EncryptInt64(rand.Reader, int64(m))
		if err != nil {
			return false
		}
		prod, err := k.PublicKey.MulScalarInt64(e, int64(w))
		if err != nil {
			return false
		}
		got, err := k.DecryptInt64(prod)
		if err != nil {
			return false
		}
		return got == int64(w)*int64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
