package paillier

import (
	"crypto/rand"
	"math"
	"math/big"
	mrand "math/rand"
	"testing"
)

// encryptVec encrypts a plaintext vector with the test key.
func encryptVec(t testing.TB, k *PrivateKey, ms []int64) []*Ciphertext {
	t.Helper()
	xs := make([]*Ciphertext, len(ms))
	for i, m := range ms {
		ct, err := k.PublicKey.EncryptInt64(rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
		xs[i] = ct
	}
	return xs
}

// TestMatVecScaledDifferential drives the kernel path and the pre-kernel
// scalar reference over random layers — negative, zero, and large weights,
// with and without biases — and requires bit-identical decrypted outputs.
func TestMatVecScaledDifferential(t *testing.T) {
	k := key(t)
	rng := mrand.New(mrand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		rows := 1 + rng.Intn(6)
		cols := 1 + rng.Intn(8)
		w := make([][]int64, rows)
		for o := range w {
			w[o] = make([]int64, cols)
			for i := range w[o] {
				switch rng.Intn(5) {
				case 0:
					w[o][i] = 0
				case 1:
					w[o][i] = -(rng.Int63n(1<<20) + 1)
				case 2:
					w[o][i] = rng.Int63() // large positive
				case 3:
					w[o][i] = -rng.Int63() // large negative
				default:
					w[o][i] = rng.Int63n(1<<16) + 1
				}
			}
		}
		var bias []int64
		if trial%2 == 0 {
			bias = make([]int64, rows)
			for o := range bias {
				bias[o] = rng.Int63n(1<<30) - (1 << 29)
			}
		}
		ms := make([]int64, cols)
		for i := range ms {
			ms[i] = rng.Int63n(2000) - 1000
		}
		xs := encryptVec(t, k, ms)

		got, err := MatVecScaled(&k.PublicKey, w, bias, xs, 3)
		if err != nil {
			t.Fatalf("trial %d: kernel: %v", trial, err)
		}
		want, err := MatVecScaledRef(&k.PublicKey, w, bias, xs, 3)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		for o := 0; o < rows; o++ {
			g, err := k.Decrypt(got[o])
			if err != nil {
				t.Fatal(err)
			}
			wv, err := k.Decrypt(want[o])
			if err != nil {
				t.Fatal(err)
			}
			if g.Cmp(wv) != 0 {
				t.Errorf("trial %d row %d: kernel %s != reference %s", trial, o, g, wv)
			}
		}
	}
}

// TestKernelMinInt64Weight exercises the magnitude handling at the int64
// boundary, where a naive negation overflows.
func TestKernelMinInt64Weight(t *testing.T) {
	if weightMagnitude(math.MinInt64) != 1<<63 {
		t.Fatalf("weightMagnitude(MinInt64) = %d", weightMagnitude(math.MinInt64))
	}
	if WeightBits(math.MinInt64) != 64 {
		t.Fatalf("WeightBits(MinInt64) = %d", WeightBits(math.MinInt64))
	}
	k := key(t)
	xs := encryptVec(t, k, []int64{3})
	ws := []int64{math.MinInt64}
	got, err := DotScaled(&k.PublicKey, xs, ws, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := DotScaledRef(&k.PublicKey, xs, ws, 5)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := k.Decrypt(got)
	wv, _ := k.Decrypt(want)
	if g.Cmp(wv) != 0 {
		t.Errorf("MinInt64 weight: kernel %s != reference %s", g, wv)
	}
}

// TestKernelWindowsAgree pins every window width to the same decrypted
// result, so the auto-selected window cannot silently change semantics.
func TestKernelWindowsAgree(t *testing.T) {
	k := key(t)
	ms := []int64{9, -4, 0, 777, -123}
	ws := []int64{-300, 12345, 99, -1, 0}
	xs := encryptVec(t, k, ms)
	var want int64 = 21
	for i := range ms {
		want += ws[i] * ms[i]
	}
	for win := uint(1); win <= maxWindow; win++ {
		ev := NewEvaluator(&k.PublicKey, WithWindow(win))
		ct, err := ev.Dot(xs, ws, big.NewInt(21))
		if err != nil {
			t.Fatalf("window %d: %v", win, err)
		}
		got, err := k.DecryptInt64(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("window %d: %d, want %d", win, got, want)
		}
	}
}

// TestKernelBlindingRegression: evaluating the same layer twice must give
// different ciphertext ring elements (outputs are re-randomized), and a row
// with all-zero weights must be a fresh blinded encryption of the bias —
// never the deterministic embedding (1 + b·n).
func TestKernelBlindingRegression(t *testing.T) {
	k := key(t)
	w := [][]int64{{2, -3}, {0, 0}}
	bias := []int64{1, 9}
	xs := encryptVec(t, k, []int64{5, 6})

	a, err := MatVecScaled(&k.PublicKey, w, bias, xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MatVecScaled(&k.PublicKey, w, bias, xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for o := range a {
		if a[o].Value().Cmp(b[o].Value()) == 0 {
			t.Errorf("row %d: two evaluations produced identical ciphertexts (unblinded output)", o)
		}
	}
	// The all-zero row must not be the deterministic encryption of the bias.
	det, err := k.PublicKey.EncryptWithBlinding(big.NewInt(9), big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range []*Ciphertext{a[1], b[1]} {
		if out.Value().Cmp(det.Value()) == 0 {
			t.Error("all-zero row produced the deterministic bias embedding")
		}
		got, err := k.DecryptInt64(out)
		if err != nil {
			t.Fatal(err)
		}
		if got != 9 {
			t.Errorf("all-zero row decrypts to %d, want 9", got)
		}
	}
}

// TestEvaluatorWithPool runs the kernel with pooled blinding factors.
func TestEvaluatorWithPool(t *testing.T) {
	k := key(t)
	p := NewPool(&k.PublicKey, rand.Reader, 16, 2)
	defer p.Close()
	ev := NewEvaluator(&k.PublicKey, WithBlinder(p))
	xs := encryptVec(t, k, []int64{4, -2, 8})
	out, err := ev.MatVec([][]int64{{1, -1, 2}, {0, 0, 0}}, []int64{0, 3}, xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{4 + 2 + 16, 3}
	for o, wv := range want {
		got, err := k.DecryptInt64(out[o])
		if err != nil {
			t.Fatal(err)
		}
		if got != wv {
			t.Errorf("row %d = %d, want %d", o, got, wv)
		}
	}
}

// TestKernelColumnUseMismatch: a Dot whose weight signs are not covered by
// the ColumnUse scan must fail loudly, not read a nil table.
func TestKernelColumnUseMismatch(t *testing.T) {
	k := key(t)
	ev := NewEvaluator(&k.PublicKey)
	xs := encryptVec(t, k, []int64{1, 2})
	kern, err := ev.NewLinearKernel(xs, []ColumnUse{UsePos, UsePos}, 1, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kern.Dot(nil, []int64{3, -5}, nil); err == nil {
		t.Error("negative weight without UseNeg table accepted")
	}
	if _, err := kern.Dot([]int{0, 7}, []int64{1, 1}, nil); err == nil {
		t.Error("out-of-range column accepted")
	}
	if _, err := kern.Dot([]int{0}, []int64{1, 1}, nil); err == nil {
		t.Error("index/weight length mismatch accepted")
	}
	if _, err := kern.Dot(nil, []int64{1}, nil); err == nil {
		t.Error("weight/input length mismatch accepted")
	}
}

// TestKernelSparseIndexedDot exercises the idx-mapped form used by the
// convolution path: positions address a subset of kernel columns.
func TestKernelSparseIndexedDot(t *testing.T) {
	k := key(t)
	ev := NewEvaluator(&k.PublicKey)
	ms := []int64{10, 20, 30, 40}
	xs := encryptVec(t, k, ms)
	use := []ColumnUse{UsePos | UseNeg, 0, UseNeg, UsePos}
	kern, err := ev.NewLinearKernel(xs, use, 2, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := kern.Dot([]int{0, 2, 3}, []int64{7, -3, 2}, big.NewInt(-5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.DecryptInt64(ct)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(7*10 - 3*30 + 2*40 - 5)
	if got != want {
		t.Errorf("indexed dot = %d, want %d", got, want)
	}
}

// TestScanColumnUse checks the sign profile derivation.
func TestScanColumnUse(t *testing.T) {
	use, maxBits, err := ScanColumnUse([][]int64{{1, -2, 0}, {4, 8, 0}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if use[0] != UsePos || use[1] != UsePos|UseNeg || use[2] != 0 {
		t.Errorf("use = %v", use)
	}
	if maxBits != 4 {
		t.Errorf("maxBits = %d, want 4", maxBits)
	}
	if _, _, err := ScanColumnUse([][]int64{{1, 2}}, 3); err == nil {
		t.Error("ragged row accepted")
	}
}

// TestPickWindowBounds keeps the automatic window inside [1, maxWindow].
func TestPickWindowBounds(t *testing.T) {
	for _, rows := range []int{0, 1, 32, 4096} {
		for _, bits := range []int{0, 1, 17, 64} {
			w := pickWindow(rows, bits)
			if w < 1 || w > maxWindow {
				t.Fatalf("pickWindow(%d, %d) = %d", rows, bits, w)
			}
		}
	}
}
