package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Ciphertext is a Paillier ciphertext: an element of Z_{n²}. Ciphertexts
// are immutable; homomorphic operations return new values.
type Ciphertext struct {
	c *big.Int
}

// Value returns a copy of the ciphertext's ring element.
func (ct *Ciphertext) Value() *big.Int { return new(big.Int).Set(ct.c) }

// NewCiphertextFromValue wraps a ring element (e.g. received over the
// network) into a Ciphertext, validating its range under the public key.
func NewCiphertextFromValue(v *big.Int, pk *PublicKey) (*Ciphertext, error) {
	if v == nil {
		return nil, errors.New("paillier: nil ciphertext value")
	}
	if v.Sign() < 0 || v.Cmp(pk.N2) >= 0 {
		return nil, errors.New("paillier: ciphertext out of range [0, n²)")
	}
	return &Ciphertext{c: new(big.Int).Set(v)}, nil
}

// UnsafeCiphertext wraps a raw ring element as a Ciphertext without
// range validation. It exists for zero-copy plumbing inside the runtime
// (thread-local views, wire decoding after validation); use
// NewCiphertextFromValue for untrusted inputs.
func UnsafeCiphertext(v *big.Int) *Ciphertext { return &Ciphertext{c: v} }

// Encrypt encrypts a signed big integer message m, |m| < n/2, producing
// c = (1 + m·n)·r^n mod n² for a fresh random unit r.
func (pk *PublicKey) Encrypt(random io.Reader, m *big.Int) (*Ciphertext, error) {
	rn, err := pk.freshBlinding(random)
	if err != nil {
		return nil, err
	}
	return pk.encryptWithBlinding(m, rn)
}

// EncryptWithBlinding encrypts m re-using a precomputed blinding factor
// r^n mod n² (see Pool). The blinding factor must be used at most once.
func (pk *PublicKey) EncryptWithBlinding(m *big.Int, rn *big.Int) (*Ciphertext, error) {
	return pk.encryptWithBlinding(m, rn)
}

func (pk *PublicKey) encryptWithBlinding(m, rn *big.Int) (*Ciphertext, error) {
	enc, err := pk.encode(m)
	if err != nil {
		return nil, err
	}
	// (1 + m·n) mod n²
	c := new(big.Int).Mul(enc, pk.N)
	c.Add(c, one)
	c.Mod(c, pk.N2)
	c.Mul(c, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{c: c}, nil
}

// freshBlinding samples r uniform in Z_n* and returns r^n mod n².
func (pk *PublicKey) freshBlinding(random io.Reader) (*big.Int, error) {
	if random == nil {
		random = rand.Reader
	}
	for {
		r, err := rand.Int(random, pk.N)
		if err != nil {
			return nil, fmt.Errorf("paillier: sampling blinding: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) != 0 {
			continue // astronomically unlikely: r shares a factor with n
		}
		return r.Exp(r, pk.N, pk.N2), nil
	}
}

// encode maps a signed message into Z_n: non-negative messages map to
// themselves, negative messages m to n + m. The message magnitude must be
// below n/2 so decoding is unambiguous.
func (pk *PublicKey) encode(m *big.Int) (*big.Int, error) {
	halfN := new(big.Int).Rsh(pk.N, 1)
	if new(big.Int).Abs(m).Cmp(halfN) >= 0 {
		return nil, fmt.Errorf("paillier: message magnitude %d bits exceeds n/2 (%d-bit key)", m.BitLen(), pk.N.BitLen())
	}
	if m.Sign() >= 0 {
		return new(big.Int).Set(m), nil
	}
	return new(big.Int).Add(pk.N, m), nil
}

// decode maps a Z_n residue back to a signed message.
func (sk *PrivateKey) decode(m *big.Int) *big.Int {
	if m.Cmp(sk.halfN) > 0 {
		return new(big.Int).Sub(m, sk.N)
	}
	return new(big.Int).Set(m)
}

// Decrypt recovers the signed message from a ciphertext using CRT-
// accelerated decryption: work modulo p² and q² separately and recombine.
func (sk *PrivateKey) Decrypt(ct *Ciphertext) (*big.Int, error) {
	if ct == nil || ct.c == nil {
		return nil, errors.New("paillier: nil ciphertext")
	}
	if ct.c.Sign() < 0 || ct.c.Cmp(sk.N2) >= 0 {
		return nil, errors.New("paillier: ciphertext out of range")
	}
	// mp = L_p(c^{p−1} mod p²)·hp mod p
	mp := new(big.Int).Exp(ct.c, sk.pMinus1, sk.p2)
	mp = lFunc(mp, sk.P)
	mp.Mul(mp, sk.hp)
	mp.Mod(mp, sk.P)
	// mq = L_q(c^{q−1} mod q²)·hq mod q
	mq := new(big.Int).Exp(ct.c, sk.qMinus1, sk.q2)
	mq = lFunc(mq, sk.Q)
	mq.Mul(mq, sk.hq)
	mq.Mod(mq, sk.Q)
	// CRT: m = mq + q·((mp − mq)·q⁻¹ mod p)
	m := new(big.Int).Sub(mp, mq)
	m.Mul(m, sk.qInvP)
	m.Mod(m, sk.P)
	m.Mul(m, sk.Q)
	m.Add(m, mq)
	m.Mod(m, sk.N)
	return sk.decode(m), nil
}

// DecryptInt64 decrypts and narrows to int64, failing if the plaintext
// does not fit.
func (sk *PrivateKey) DecryptInt64(ct *Ciphertext) (int64, error) {
	m, err := sk.Decrypt(ct)
	if err != nil {
		return 0, err
	}
	if !m.IsInt64() {
		return 0, fmt.Errorf("paillier: plaintext %d bits overflows int64", m.BitLen())
	}
	return m.Int64(), nil
}

// EncryptInt64 encrypts a signed 64-bit message.
func (pk *PublicKey) EncryptInt64(random io.Reader, m int64) (*Ciphertext, error) {
	return pk.Encrypt(random, big.NewInt(m))
}

// Add homomorphically adds two ciphertexts: E(m1)·E(m2) mod n² (Eq. 1).
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.c, b.c)
	c.Mod(c, pk.N2)
	return &Ciphertext{c: c}
}

// AddPlain homomorphically adds a plaintext constant to a ciphertext by
// multiplying with the deterministic encryption (1 + k·n), which needs no
// blinding because the sum's blinding carries over.
func (pk *PublicKey) AddPlain(a *Ciphertext, k *big.Int) (*Ciphertext, error) {
	enc, err := pk.encode(k)
	if err != nil {
		return nil, err
	}
	c := new(big.Int).Mul(enc, pk.N)
	c.Add(c, one)
	c.Mod(c, pk.N2)
	c.Mul(c, a.c)
	c.Mod(c, pk.N2)
	return &Ciphertext{c: c}, nil
}

// MulScalar homomorphically multiplies the plaintext by a signed scalar:
// E(m)^w mod n² (Eq. 2). Negative scalars use the modular inverse of the
// ciphertext, which exists because ciphertexts are units of Z_{n²}.
func (pk *PublicKey) MulScalar(a *Ciphertext, w *big.Int) (*Ciphertext, error) {
	if w.Sign() >= 0 {
		return &Ciphertext{c: new(big.Int).Exp(a.c, w, pk.N2)}, nil
	}
	inv := new(big.Int).ModInverse(a.c, pk.N2)
	if inv == nil {
		return nil, errors.New("paillier: ciphertext not invertible (corrupted value)")
	}
	absW := new(big.Int).Neg(w)
	return &Ciphertext{c: inv.Exp(inv, absW, pk.N2)}, nil
}

// MulScalarInt64 is MulScalar for int64 weights, the common case after
// parameter scaling.
func (pk *PublicKey) MulScalarInt64(a *Ciphertext, w int64) (*Ciphertext, error) {
	return pk.MulScalar(a, big.NewInt(w))
}

// EncryptZero returns a fresh encryption of zero, useful as the
// accumulator seed of a homomorphic dot product.
func (pk *PublicKey) EncryptZero(random io.Reader) (*Ciphertext, error) {
	return pk.Encrypt(random, big.NewInt(0))
}

// RerandomizeWith multiplies a ciphertext by a precomputed blinding
// factor r^n mod n² (from a Pool or Blinder), producing an unlinkable
// ciphertext of the same plaintext without the inline exponentiation of
// Rerandomize. The factor must be used at most once.
func (pk *PublicKey) RerandomizeWith(a *Ciphertext, rn *big.Int) *Ciphertext {
	c := new(big.Int).Mul(a.c, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{c: c}
}

// Rerandomize multiplies a ciphertext by a fresh encryption of zero so the
// resulting ciphertext is unlinkable to the input while decrypting to the
// same plaintext.
func (pk *PublicKey) Rerandomize(random io.Reader, a *Ciphertext) (*Ciphertext, error) {
	z, err := pk.EncryptZero(random)
	if err != nil {
		return nil, err
	}
	return pk.Add(a, z), nil
}
