package paillier

import (
	"encoding/gob"
	"errors"
	"io"
	"math/big"
)

// wireKey is the gob form of keys: the public key is just n; the private
// key adds the factors (all precomputation rebuilds on load).
type wireKey struct {
	N    []byte
	P, Q []byte // private key only
}

// SavePublicKey writes the public key in gob format, e.g. for shipping
// to the model provider at session setup.
func SavePublicKey(pk *PublicKey, w io.Writer) error {
	if err := pk.Validate(); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(wireKey{N: pk.N.Bytes()})
}

// LoadPublicKey reads a public key written by SavePublicKey.
func LoadPublicKey(r io.Reader) (*PublicKey, error) {
	var wk wireKey
	if err := gob.NewDecoder(r).Decode(&wk); err != nil {
		return nil, err
	}
	if len(wk.N) == 0 {
		return nil, errors.New("paillier: empty public key")
	}
	n := new(big.Int).SetBytes(wk.N)
	pk := &PublicKey{N: n, N2: new(big.Int).Mul(n, n)}
	if err := pk.Validate(); err != nil {
		return nil, err
	}
	return pk, nil
}

// SavePrivateKey writes the private key (factors) in gob format. The
// data provider persists this; it must never reach the model provider.
func SavePrivateKey(sk *PrivateKey, w io.Writer) error {
	if sk == nil || sk.P == nil || sk.Q == nil {
		return errors.New("paillier: incomplete private key")
	}
	return gob.NewEncoder(w).Encode(wireKey{N: sk.N.Bytes(), P: sk.P.Bytes(), Q: sk.Q.Bytes()})
}

// LoadPrivateKey reads a private key written by SavePrivateKey,
// rebuilding all CRT precomputation and validating the factorization.
func LoadPrivateKey(r io.Reader) (*PrivateKey, error) {
	var wk wireKey
	if err := gob.NewDecoder(r).Decode(&wk); err != nil {
		return nil, err
	}
	if len(wk.P) == 0 || len(wk.Q) == 0 {
		return nil, errors.New("paillier: serialized key has no factors")
	}
	p := new(big.Int).SetBytes(wk.P)
	q := new(big.Int).SetBytes(wk.Q)
	sk, err := NewPrivateKeyFromPrimes(p, q)
	if err != nil {
		return nil, err
	}
	if len(wk.N) > 0 {
		n := new(big.Int).SetBytes(wk.N)
		if n.Cmp(sk.N) != 0 {
			return nil, errors.New("paillier: serialized modulus does not match factors")
		}
	}
	return sk, nil
}

// DecryptNoCRT is the textbook decryption m = L(c^λ mod n²)·μ mod n
// without the CRT speed-up. It exists as the ablation baseline for the
// CRT optimization (see bench_test.go) and as an independent
// cross-check of Decrypt.
func (sk *PrivateKey) DecryptNoCRT(ct *Ciphertext) (*big.Int, error) {
	if ct == nil || ct.c == nil {
		return nil, errors.New("paillier: nil ciphertext")
	}
	// λ = lcm(p−1, q−1); μ = λ⁻¹ mod n (g = n+1 variant).
	gcd := new(big.Int).GCD(nil, nil, sk.pMinus1, sk.qMinus1)
	lambda := new(big.Int).Mul(sk.pMinus1, sk.qMinus1)
	lambda.Div(lambda, gcd)
	mu := new(big.Int).ModInverse(new(big.Int).Mod(lambda, sk.N), sk.N)
	if mu == nil {
		return nil, errors.New("paillier: λ not invertible mod n")
	}
	u := new(big.Int).Exp(ct.c, lambda, sk.N2)
	m := lFunc(u, sk.N)
	m.Mul(m, mu)
	m.Mod(m, sk.N)
	return sk.decode(m), nil
}
