package paillier

import (
	"bytes"
	"crypto/rand"
	"testing"
)

func TestPublicKeySerializationRoundTrip(t *testing.T) {
	k := key(t)
	var buf bytes.Buffer
	if err := SavePublicKey(&k.PublicKey, &buf); err != nil {
		t.Fatal(err)
	}
	pk, err := LoadPublicKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if pk.N.Cmp(k.N) != 0 || pk.N2.Cmp(k.N2) != 0 {
		t.Error("public key corrupted")
	}
	// The loaded key must encrypt values the original key decrypts.
	ct, err := pk.EncryptInt64(rand.Reader, -777)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.DecryptInt64(ct)
	if err != nil || got != -777 {
		t.Errorf("round-trip encryption decrypts to %d (%v)", got, err)
	}
}

func TestPrivateKeySerializationRoundTrip(t *testing.T) {
	k := key(t)
	var buf bytes.Buffer
	if err := SavePrivateKey(k, &buf); err != nil {
		t.Fatal(err)
	}
	sk, err := LoadPrivateKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := k.PublicKey.EncryptInt64(rand.Reader, 424242)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptInt64(ct)
	if err != nil || got != 424242 {
		t.Errorf("loaded key decrypts to %d (%v)", got, err)
	}
}

func TestLoadKeyRejectsGarbage(t *testing.T) {
	if _, err := LoadPublicKey(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage public key accepted")
	}
	if _, err := LoadPrivateKey(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage private key accepted")
	}
	// public key stream into private loader: must fail (no factors)
	k := key(t)
	var buf bytes.Buffer
	if err := SavePublicKey(&k.PublicKey, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPrivateKey(&buf); err == nil {
		t.Error("factor-less private key accepted")
	}
}

// TestDecryptNoCRTAgrees cross-checks the CRT fast path against the
// textbook decryption.
func TestDecryptNoCRTAgrees(t *testing.T) {
	k := key(t)
	for _, m := range []int64{0, 1, -1, 9999999, -123456789} {
		ct, err := k.PublicKey.EncryptInt64(rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := k.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := k.DecryptNoCRT(ct)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Cmp(slow) != 0 {
			t.Errorf("m=%d: CRT %v vs textbook %v", m, fast, slow)
		}
	}
	if _, err := k.DecryptNoCRT(nil); err == nil {
		t.Error("nil ciphertext accepted")
	}
}
