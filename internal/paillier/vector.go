package paillier

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"runtime"
	"sync"

	"ppstream/internal/tensor"
)

// CipherTensor is a tensor of Paillier ciphertexts — the encrypted form of
// the data provider's activations that flows through the model provider's
// linear stages.
type CipherTensor = tensor.Tensor[*Ciphertext]

// EncryptTensor encrypts an int64 tensor element-wise, parallelizing
// across workers goroutines (0 means GOMAXPROCS). Encryption dominates the
// data provider's cost (paper Fig. 1), so this is the hottest path on that
// side.
func EncryptTensor(pk *PublicKey, random io.Reader, t *tensor.Tensor[int64], workers int) (*CipherTensor, error) {
	out := tensor.New[*Ciphertext](t.Shape()...)
	in, od := t.Data(), out.Data()
	var firstErr error
	var mu sync.Mutex
	parallelFor(len(in), workers, func(i int) {
		ct, err := pk.EncryptInt64(random, in[i])
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		od[i] = ct
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// DecryptTensor decrypts a ciphertext tensor to int64 values in parallel.
func DecryptTensor(sk *PrivateKey, t *CipherTensor, workers int) (*tensor.Tensor[int64], error) {
	out := tensor.New[int64](t.Shape()...)
	in, od := t.Data(), out.Data()
	var firstErr error
	var mu sync.Mutex
	parallelFor(len(in), workers, func(i int) {
		if in[i] == nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("paillier: nil ciphertext at offset %d", i)
			}
			mu.Unlock()
			return
		}
		v, err := sk.DecryptInt64(in[i])
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		od[i] = v
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// DecryptTensorBig decrypts a ciphertext tensor to arbitrary-precision
// signed integers in parallel. Linear stages raise plaintext magnitudes
// beyond int64 at large scaling factors, so the protocol uses this
// variant on the data provider.
func DecryptTensorBig(sk *PrivateKey, t *CipherTensor, workers int) (*tensor.Tensor[*big.Int], error) {
	out := tensor.New[*big.Int](t.Shape()...)
	in, od := t.Data(), out.Data()
	var firstErr error
	var mu sync.Mutex
	parallelFor(len(in), workers, func(i int) {
		if in[i] == nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("paillier: nil ciphertext at offset %d", i)
			}
			mu.Unlock()
			return
		}
		v, err := sk.Decrypt(in[i])
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		od[i] = v
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// DotScaled computes the encryption of Σ_i w_i·m_i + b from the encrypted
// inputs E(m_i), integer weights w_i, and integer bias b — the paper's
// Eq. (3): Π_i E(m_i)^{w_i} · (1 + b·n) mod n² — through the two-phase
// linear kernel (see kernel.go): negative-weight inverses are computed
// once per input and the row is evaluated with interleaved
// multi-exponentiation. The output is re-randomized with a fresh r^n
// factor, so it is a semantically-secure fresh encryption even when every
// weight is zero. For evaluating many rows over the same inputs, use
// Evaluator.MatVec (or Evaluator.NewLinearKernel directly) so the
// preprocessing is shared.
func DotScaled(pk *PublicKey, xs []*Ciphertext, ws []int64, bias int64) (*Ciphertext, error) {
	var b *big.Int
	if bias != 0 {
		b = big.NewInt(bias)
	}
	return NewEvaluator(pk).Dot(xs, ws, b)
}

// MatVecScaled evaluates an encrypted fully-connected layer: for weight
// matrix W ([out][in] int64), encrypted input x, and bias b, returns the
// encrypted output vector of length out. The per-input preprocessing
// (inverses, power tables) is shared across all rows, rows run in
// parallel, and every output is re-randomized. Blinding factors are
// computed inline from crypto/rand; use an Evaluator with an attached
// Pool to take them off the critical path.
func MatVecScaled(pk *PublicKey, w [][]int64, bias []int64, x []*Ciphertext, workers int) ([]*Ciphertext, error) {
	return NewEvaluator(pk).MatVec(w, bias, x, workers)
}

// DotScaledRef is the pre-kernel scalar implementation of Eq. (3), kept
// as the reference for differential tests. It exponentiates each input
// independently (recomputing inverses per weight) and does NOT
// re-randomize its output — its randomness is only inherited from the
// inputs, so it must not be used on ciphertexts that leave the model
// provider.
func DotScaledRef(pk *PublicKey, xs []*Ciphertext, ws []int64, bias int64) (*Ciphertext, error) {
	if len(xs) != len(ws) {
		return nil, fmt.Errorf("paillier: dot length mismatch: %d inputs vs %d weights", len(xs), len(ws))
	}
	acc := big.NewInt(1)
	tmp := new(big.Int)
	for i, x := range xs {
		if x == nil {
			return nil, fmt.Errorf("paillier: nil ciphertext at %d", i)
		}
		w := ws[i]
		if w == 0 {
			continue
		}
		var term *big.Int
		if w > 0 {
			term = tmp.Exp(x.c, big.NewInt(w), pk.N2)
		} else {
			inv := new(big.Int).ModInverse(x.c, pk.N2)
			if inv == nil {
				return nil, errors.New("paillier: ciphertext not invertible")
			}
			absW := new(big.Int).Abs(big.NewInt(w))
			term = tmp.Set(inv.Exp(inv, absW, pk.N2))
		}
		acc.Mul(acc, term)
		acc.Mod(acc, pk.N2)
	}
	out := &Ciphertext{c: acc}
	if bias != 0 {
		var err error
		out, err = pk.AddPlain(out, big.NewInt(bias))
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MatVecScaledRef is the pre-kernel row-by-row reference layer
// evaluation over DotScaledRef, kept for differential tests and as the
// speedup baseline of BenchmarkMatVecScaledRef. Unblinded — see
// DotScaledRef.
func MatVecScaledRef(pk *PublicKey, w [][]int64, bias []int64, x []*Ciphertext, workers int) ([]*Ciphertext, error) {
	outN := len(w)
	if bias != nil && len(bias) != outN {
		return nil, fmt.Errorf("paillier: bias length %d != rows %d", len(bias), outN)
	}
	out := make([]*Ciphertext, outN)
	var firstErr error
	var mu sync.Mutex
	parallelFor(outN, workers, func(o int) {
		if len(w[o]) != len(x) {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("paillier: row %d length %d != input %d", o, len(w[o]), len(x))
			}
			mu.Unlock()
			return
		}
		var b int64
		if bias != nil {
			b = bias[o]
		}
		ct, err := DotScaledRef(pk, x, w[o], b)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		out[o] = ct
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// parallelFor runs f(i) for i in [0,n) across the given number of worker
// goroutines (0 or negative means GOMAXPROCS), blocking until done.
func parallelFor(n, workers int, f func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
