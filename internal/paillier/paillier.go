// Package paillier implements Paillier's additively homomorphic public-key
// cryptosystem (EUROCRYPT 1999), the privacy-preserving primitive PP-Stream
// uses for linear neural-network operations (paper Section III-B).
//
// Supported homomorphic operations on ciphertexts:
//
//   - Add:       D(E(m1) · E(m2) mod n²)  = m1 + m2   (paper Eq. 1)
//   - MulScalar: D(E(m)^w mod n²)         = w · m      (paper Eq. 2)
//
// so a neural-network linear operation Σ_i w_i·m_i + b evaluates as
// Π_i E(m_i)^{w_i} · E(b) mod n² (paper Eq. 3).
//
// The implementation uses the standard g = n+1 variant, which makes
// encryption a single modular exponentiation, and CRT-accelerated
// decryption. Messages are signed integers encoded into Z_n with the upper
// half of the ring representing negative values.
//
// The paper's prototype uses GMP with 2048-bit keys; this package is pure
// Go (math/big) with the key size configurable. Tests use small keys for
// speed; the benchmark harness sweeps key sizes exactly as the paper's
// Figure 1 does.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// MinKeyBits is the smallest key size GenerateKey accepts. Keys this small
// are for tests and benchmarks only; production use should follow the
// paper and NIST SP 800-57 guidance (2048 bits).
const MinKeyBits = 128

// RecommendedKeyBits is the key size the paper's prototype uses.
const RecommendedKeyBits = 2048

var (
	one = big.NewInt(1)
)

// PublicKey holds the Paillier public parameters. With the g = n+1
// variant, n alone determines the key.
type PublicKey struct {
	N  *big.Int // modulus n = p·q
	N2 *big.Int // n²
}

// PrivateKey holds the factorization of n and the CRT precomputation used
// for fast decryption.
type PrivateKey struct {
	PublicKey
	P, Q *big.Int // prime factors of n

	p2, q2  *big.Int // p², q²
	pMinus1 *big.Int // p−1
	qMinus1 *big.Int // q−1
	hp, hq  *big.Int // CRT decryption constants
	qInvP   *big.Int // q⁻¹ mod p
	halfN   *big.Int // ⌊n/2⌋, signed-decode threshold
}

// Bits returns the size of the modulus in bits.
func (pk *PublicKey) Bits() int { return pk.N.BitLen() }

// Validate reports an error if the public key is structurally unusable.
func (pk *PublicKey) Validate() error {
	if pk == nil || pk.N == nil || pk.N2 == nil {
		return errors.New("paillier: nil public key component")
	}
	if pk.N.Sign() <= 0 || pk.N.BitLen() < MinKeyBits {
		return fmt.Errorf("paillier: modulus too small (%d bits, need ≥ %d)", pk.N.BitLen(), MinKeyBits)
	}
	n2 := new(big.Int).Mul(pk.N, pk.N)
	if n2.Cmp(pk.N2) != 0 {
		return errors.New("paillier: N² does not match N")
	}
	return nil
}

// GenerateKey creates a fresh key pair with an n-bit modulus read from
// random (use crypto/rand.Reader). The two primes are bits/2 each.
func GenerateKey(random io.Reader, bits int) (*PrivateKey, error) {
	if random == nil {
		random = rand.Reader
	}
	if bits < MinKeyBits {
		return nil, fmt.Errorf("paillier: key size %d below minimum %d", bits, MinKeyBits)
	}
	if bits%2 != 0 {
		return nil, fmt.Errorf("paillier: key size must be even, got %d", bits)
	}
	for {
		p, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating p: %w", err)
		}
		q, err := rand.Prime(random, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		// gcd(n, (p−1)(q−1)) must be 1; with p ≠ q both prime and the
		// same bit length this holds, but verify defensively.
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		if new(big.Int).GCD(nil, nil, n, phi).Cmp(one) != 0 {
			continue
		}
		return newPrivateKey(p, q)
	}
}

// NewPrivateKeyFromPrimes reconstructs a private key from its prime
// factors, e.g. after deserialization.
func NewPrivateKeyFromPrimes(p, q *big.Int) (*PrivateKey, error) {
	if p == nil || q == nil || p.Sign() <= 0 || q.Sign() <= 0 {
		return nil, errors.New("paillier: invalid primes")
	}
	if p.Cmp(q) == 0 {
		return nil, errors.New("paillier: p and q must differ")
	}
	if !p.ProbablyPrime(20) || !q.ProbablyPrime(20) {
		return nil, errors.New("paillier: factors fail primality test")
	}
	return newPrivateKey(p, q)
}

func newPrivateKey(p, q *big.Int) (*PrivateKey, error) {
	n := new(big.Int).Mul(p, q)
	n2 := new(big.Int).Mul(n, n)
	key := &PrivateKey{
		PublicKey: PublicKey{N: n, N2: n2},
		P:         new(big.Int).Set(p),
		Q:         new(big.Int).Set(q),
		p2:        new(big.Int).Mul(p, p),
		q2:        new(big.Int).Mul(q, q),
		pMinus1:   new(big.Int).Sub(p, one),
		qMinus1:   new(big.Int).Sub(q, one),
		halfN:     new(big.Int).Rsh(n, 1),
	}
	// hp = L_p(g^{p−1} mod p²)⁻¹ mod p with g = n+1.
	g := new(big.Int).Add(n, one)
	key.hp = new(big.Int)
	key.hq = new(big.Int)
	lp := lFunc(new(big.Int).Exp(g, key.pMinus1, key.p2), p)
	if key.hp.ModInverse(lp, p) == nil {
		return nil, errors.New("paillier: hp not invertible (bad primes)")
	}
	lq := lFunc(new(big.Int).Exp(g, key.qMinus1, key.q2), q)
	if key.hq.ModInverse(lq, q) == nil {
		return nil, errors.New("paillier: hq not invertible (bad primes)")
	}
	key.qInvP = new(big.Int)
	if key.qInvP.ModInverse(q, p) == nil {
		return nil, errors.New("paillier: q not invertible mod p (bad primes)")
	}
	return key, nil
}

// lFunc computes L(u) = (u − 1) / d, Paillier's L function with divisor d.
func lFunc(u, d *big.Int) *big.Int {
	t := new(big.Int).Sub(u, one)
	return t.Div(t, d)
}
