package paillier

import (
	"errors"
	"fmt"
	"io"
	"math/big"
)

// Plaintext packing: multiple signed values share one ciphertext as
// fixed-width limbs of the plaintext integer. Homomorphic addition then
// adds all slots at once, and scalar multiplication by a shared constant
// scales all slots — cutting the data provider's per-element encryption
// cost, which Figure 1 shows dominates. Packing suits the protocol's
// re-encryption step (step 2.3), where a whole activation vector is
// encrypted with one destination (the next linear stage) and uniform
// scale.
//
// Each slot holds a signed value in (−2^(width−1−guard), 2^(width−1−guard));
// guard bits absorb carries from homomorphic additions: g guard bits
// tolerate 2^g − 1 additions (or one scalar multiplication by |w| <
// 2^g) without slot overflow.

// Packing describes a slot layout.
type Packing struct {
	// Slots is the number of values per ciphertext.
	Slots int
	// Width is the bit width of one slot (including guard bits).
	Width int
	// Guard is the number of headroom bits reserved inside each slot.
	Guard int
}

// NewPacking computes the maximal slot count for the key so that all
// slots plus one sign slot fit under n/2.
func NewPacking(pk *PublicKey, width, guard int) (*Packing, error) {
	if width < 2 || guard < 0 || guard >= width {
		return nil, fmt.Errorf("paillier: invalid packing width=%d guard=%d", width, guard)
	}
	// One extra slot of headroom keeps the signed decode unambiguous.
	slots := (pk.N.BitLen() - 1 - width) / width
	if slots < 1 {
		return nil, fmt.Errorf("paillier: key too small for %d-bit slots", width)
	}
	return &Packing{Slots: slots, Width: width, Guard: guard}, nil
}

// MaxValue returns the largest magnitude a slot may hold at rest
// (strictly below the bias 2^(width−1−guard)).
func (p *Packing) MaxValue() int64 {
	bits := p.Width - 1 - p.Guard
	if bits >= 63 {
		bits = 62
	}
	return (int64(1) << uint(bits)) - 1
}

// Pack encodes up to Slots signed values into one plaintext integer.
// Each slot stores v + B with bias B = 2^(width−1−guard), so negative
// values borrow nothing from neighbours and the guard bits absorb the
// bias accumulation of homomorphic operations (k additions multiply the
// bias by k; scalar multiplication by w multiplies it by w — both must
// stay ≤ 2^guard). Unpack removes the accumulated bias. The returned
// plaintext is always non-negative.
func (p *Packing) Pack(vals []int64) (*big.Int, error) {
	if len(vals) == 0 || len(vals) > p.Slots {
		return nil, fmt.Errorf("paillier: pack %d values into %d slots", len(vals), p.Slots)
	}
	maxV := p.MaxValue()
	out := new(big.Int)
	bias := new(big.Int).Lsh(big.NewInt(1), uint(p.Width-1-p.Guard))
	tmp := new(big.Int)
	for i := len(vals) - 1; i >= 0; i-- {
		v := vals[i]
		if v > maxV || v < -maxV {
			return nil, fmt.Errorf("paillier: value %d exceeds slot range ±%d", v, maxV)
		}
		out.Lsh(out, uint(p.Width))
		tmp.SetInt64(v)
		tmp.Add(tmp, bias)
		out.Add(out, tmp)
	}
	return out, nil
}

// Unpack decodes count values from a packed plaintext produced by Pack
// (possibly after adds additions and/or one scalar multiplication by
// scalar; pass adds=0, scalar=1 for a fresh ciphertext). The caller must
// know the homomorphic history because the per-slot bias accumulates:
// after k additions of packed ciphertexts the bias is k+1 times the
// base bias; after scalar multiplication by w it is w times.
func (p *Packing) Unpack(packed *big.Int, count int, biasFactor int64) ([]int64, error) {
	if count <= 0 || count > p.Slots {
		return nil, fmt.Errorf("paillier: unpack %d values from %d slots", count, p.Slots)
	}
	if biasFactor <= 0 {
		return nil, errors.New("paillier: bias factor must be ≥ 1")
	}
	if packed.Sign() < 0 {
		return nil, errors.New("paillier: packed plaintext must be non-negative")
	}
	mask := new(big.Int).Lsh(big.NewInt(1), uint(p.Width))
	mask.Sub(mask, big.NewInt(1))
	bias := new(big.Int).Lsh(big.NewInt(1), uint(p.Width-1-p.Guard))
	bias.Mul(bias, big.NewInt(biasFactor))
	out := make([]int64, count)
	work := new(big.Int).Set(packed)
	slot := new(big.Int)
	for i := 0; i < count; i++ {
		slot.And(work, mask)
		slot.Sub(slot, bias)
		if !slot.IsInt64() {
			return nil, fmt.Errorf("paillier: slot %d overflowed during homomorphic operations", i)
		}
		out[i] = slot.Int64()
		work.Rsh(work, uint(p.Width))
	}
	return out, nil
}

// EncryptPacked packs and encrypts a value vector, returning the
// ciphertexts (one per Slots-sized chunk) and the per-ciphertext counts.
func (p *Packing) EncryptPacked(pk *PublicKey, random io.Reader, vals []int64) ([]*Ciphertext, []int, error) {
	if len(vals) == 0 {
		return nil, nil, errors.New("paillier: no values to pack")
	}
	var cts []*Ciphertext
	var counts []int
	for start := 0; start < len(vals); start += p.Slots {
		end := start + p.Slots
		if end > len(vals) {
			end = len(vals)
		}
		m, err := p.Pack(vals[start:end])
		if err != nil {
			return nil, nil, err
		}
		ct, err := pk.Encrypt(random, m)
		if err != nil {
			return nil, nil, err
		}
		cts = append(cts, ct)
		counts = append(counts, end-start)
	}
	return cts, counts, nil
}

// DecryptPacked reverses EncryptPacked (biasFactor as in Unpack).
func (p *Packing) DecryptPacked(sk *PrivateKey, cts []*Ciphertext, counts []int, biasFactor int64) ([]int64, error) {
	if len(cts) != len(counts) {
		return nil, fmt.Errorf("paillier: %d ciphertexts vs %d counts", len(cts), len(counts))
	}
	var out []int64
	for i, ct := range cts {
		m, err := sk.Decrypt(ct)
		if err != nil {
			return nil, err
		}
		vals, err := p.Unpack(m, counts[i], biasFactor)
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
	}
	return out, nil
}
