package paillier

import (
	"crypto/rand"
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"
)

// flakyReader fails its first `failures` reads, then delegates to the
// underlying reader — a transient entropy outage.
type flakyReader struct {
	failures atomic.Int64
	under    io.Reader
}

func (f *flakyReader) Read(p []byte) (int, error) {
	if f.failures.Add(-1) >= 0 {
		return 0, errors.New("simulated entropy outage")
	}
	return f.under.Read(p)
}

// TestPoolWorkersSurviveRandFailures: fill workers must retry with backoff
// on randomness errors instead of exiting, keep the alive gauge at the
// construction count, and resume producing usable factors.
func TestPoolWorkersSurviveRandFailures(t *testing.T) {
	k := key(t)
	fr := &flakyReader{under: rand.Reader}
	fr.failures.Store(3)
	p := NewPool(&k.PublicKey, fr, 4, 2)
	defer p.Close()

	deadline := time.Now().Add(10 * time.Second)
	for p.Retries() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.Retries() == 0 {
		t.Fatal("workers never observed a randomness failure")
	}
	if got := p.AliveWorkers(); got != 2 {
		t.Fatalf("AliveWorkers = %d after failures, want 2", got)
	}
	// Wait for the outage to end (all queued failures consumed) so the
	// inline fallback below cannot hit the flaky reads.
	for fr.failures.Load() >= 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if fr.failures.Load() >= 0 {
		t.Fatal("outage never drained")
	}
	// The pool must recover and serve blinding factors and encryptions.
	rn, err := p.Blinding()
	if err != nil {
		t.Fatalf("Blinding after recovery: %v", err)
	}
	if rn.Sign() <= 0 {
		t.Fatal("blinding factor not positive")
	}
	ct, err := p.EncryptInt64(-42)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.DecryptInt64(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got != -42 {
		t.Fatalf("round trip after recovery: %d", got)
	}
}

// TestPoolPrecomputeHookCountsBackgroundModExps: every factor the fill
// workers precompute fires the hook exactly once — the off-path modexp
// accounting the serving plane folds into its cost.modexps counter. A
// consumed-and-refilled factor is charged again (it cost another
// exponentiation), and inline pool-miss fallbacks are NOT charged here
// (the consumer's meter records those).
func TestPoolPrecomputeHookCountsBackgroundModExps(t *testing.T) {
	k := key(t)
	var precomputed atomic.Uint64
	p := NewPool(&k.PublicKey, rand.Reader, 3, 1, WithPrecomputeHook(func(n uint64) {
		precomputed.Add(n)
	}))
	defer p.Close()

	deadline := time.Now().Add(10 * time.Second)
	for precomputed.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := precomputed.Load(); got < 3 {
		t.Fatalf("precompute hook fired %d times, want >= pool size 3", got)
	}

	// Draining one pooled factor makes the worker replace it: the hook
	// total must grow past the initial fill.
	before := precomputed.Load()
	if _, pooled, err := p.BlindingTracked(); err != nil || !pooled {
		t.Fatalf("BlindingTracked: pooled=%v err=%v, want a pool hit", pooled, err)
	}
	for precomputed.Load() == before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if precomputed.Load() == before {
		t.Fatal("consumed factor was never replaced (hook did not fire again)")
	}
}

// TestPoolCloseStopsWorkers: after Close the alive gauge drains to zero,
// even while the reader is failing (workers must exit from the backoff
// sleep, not hang in it).
func TestPoolCloseStopsWorkers(t *testing.T) {
	k := key(t)
	fr := &flakyReader{under: rand.Reader}
	fr.failures.Store(1 << 30) // fail forever
	p := NewPool(&k.PublicKey, fr, 2, 3)
	if got := p.AliveWorkers(); got != 3 {
		t.Fatalf("AliveWorkers = %d at start, want 3", got)
	}
	p.Close()
	if got := p.AliveWorkers(); got != 0 {
		t.Fatalf("AliveWorkers = %d after Close, want 0", got)
	}
}
