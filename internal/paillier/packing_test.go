package paillier

import (
	"crypto/rand"
	"testing"
	"testing/quick"
)

func testPacking(t testing.TB) (*PrivateKey, *Packing) {
	k := key(t.(*testing.T))
	p, err := NewPacking(&k.PublicKey, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

func TestNewPackingValidation(t *testing.T) {
	k := key(t)
	if _, err := NewPacking(&k.PublicKey, 1, 0); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := NewPacking(&k.PublicKey, 8, 8); err == nil {
		t.Error("guard == width accepted")
	}
	if _, err := NewPacking(&k.PublicKey, 8, -1); err == nil {
		t.Error("negative guard accepted")
	}
	// too-wide slots for the key
	if _, err := NewPacking(&k.PublicKey, 300, 0); err == nil {
		t.Error("oversized slots accepted")
	}
	p, err := NewPacking(&k.PublicKey, 24, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slots < 2 {
		t.Errorf("only %d slots on a %d-bit key", p.Slots, k.Bits())
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	_, p := testPacking(t)
	vals := []int64{0, 1, -1, 30000, -30000, 12345}
	packed, err := p.Pack(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Unpack(packed, len(vals), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if got[i] != v {
			t.Errorf("slot %d: %d -> %d", i, v, got[i])
		}
	}
}

func TestPackRejectsOutOfRange(t *testing.T) {
	_, p := testPacking(t)
	big := p.MaxValue() + 1
	if _, err := p.Pack([]int64{big}); err == nil {
		t.Error("over-range value accepted")
	}
	if _, err := p.Pack([]int64{-big}); err == nil {
		t.Error("under-range value accepted")
	}
	if _, err := p.Pack(nil); err == nil {
		t.Error("empty pack accepted")
	}
	many := make([]int64, p.Slots+1)
	if _, err := p.Pack(many); err == nil {
		t.Error("too many values accepted")
	}
}

// TestPackedHomomorphicAdd: one homomorphic addition adds every slot.
func TestPackedHomomorphicAdd(t *testing.T) {
	k, p := testPacking(t)
	a := []int64{10, -20, 30}
	b := []int64{1, 2, -3}
	ma, _ := p.Pack(a)
	mb, _ := p.Pack(b)
	ca, err := k.PublicKey.Encrypt(rand.Reader, ma)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := k.PublicKey.Encrypt(rand.Reader, mb)
	if err != nil {
		t.Fatal(err)
	}
	sum := k.PublicKey.Add(ca, cb)
	m, err := k.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	// two packed plaintexts added: bias factor 2
	got, err := p.Unpack(m, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if got[i] != a[i]+b[i] {
			t.Errorf("slot %d: %d + %d = %d", i, a[i], b[i], got[i])
		}
	}
}

// TestPackedScalarMul: scalar multiplication scales every slot.
func TestPackedScalarMul(t *testing.T) {
	k, p := testPacking(t)
	vals := []int64{7, -9, 100}
	const w = 5
	m, _ := p.Pack(vals)
	ct, err := k.PublicKey.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := k.PublicKey.MulScalarInt64(ct, w)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := k.Decrypt(prod)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Unpack(dec, len(vals), w)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if got[i] != w*v {
			t.Errorf("slot %d: %d·%d = %d", i, w, v, got[i])
		}
	}
}

func TestEncryptPackedRoundTrip(t *testing.T) {
	k, p := testPacking(t)
	// more values than one ciphertext holds
	vals := make([]int64, p.Slots*2+3)
	for i := range vals {
		vals[i] = int64(i*31 - 500)
	}
	cts, counts, err := p.EncryptPacked(&k.PublicKey, rand.Reader, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(cts) != 3 {
		t.Fatalf("%d ciphertexts for %d values over %d slots", len(cts), len(vals), p.Slots)
	}
	got, err := p.DecryptPacked(k, cts, counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("got %d values", len(got))
	}
	for i, v := range vals {
		if got[i] != v {
			t.Errorf("value %d: %d -> %d", i, v, got[i])
		}
	}
	if _, _, err := p.EncryptPacked(&k.PublicKey, rand.Reader, nil); err == nil {
		t.Error("empty vector accepted")
	}
	if _, err := p.DecryptPacked(k, cts, counts[:1], 1); err == nil {
		t.Error("count mismatch accepted")
	}
}

// TestPackedEncryptionIsCheaper demonstrates the optimization: packing
// reduces the number of public-key encryptions by ~Slots×.
func TestPackedEncryptionIsCheaper(t *testing.T) {
	k, p := testPacking(t)
	vals := make([]int64, p.Slots*4)
	for i := range vals {
		vals[i] = int64(i)
	}
	cts, _, err := p.EncryptPacked(&k.PublicKey, rand.Reader, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(cts)*p.Slots < len(vals) {
		t.Fatal("packing lost values")
	}
	if len(cts) >= len(vals)/2 {
		t.Errorf("packing produced %d ciphertexts for %d values — no saving", len(cts), len(vals))
	}
}

// Property: pack/unpack round-trips for random in-range vectors.
func TestPackingProperty(t *testing.T) {
	_, p := testPacking(t)
	maxV := p.MaxValue()
	f := func(raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > p.Slots {
			raw = raw[:p.Slots]
		}
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r) % maxV
		}
		packed, err := p.Pack(vals)
		if err != nil {
			return false
		}
		got, err := p.Unpack(packed, len(vals), 1)
		if err != nil {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
