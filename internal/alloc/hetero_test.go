package alloc

import (
	"math"
	"testing"
)

func TestHeterogeneousDetection(t *testing.T) {
	homo := []Server{{Model: true, Cores: 2}, {Model: false, Cores: 2}}
	if Heterogeneous(homo) {
		t.Error("zero-speed servers reported heterogeneous")
	}
	homo1 := []Server{{Model: true, Cores: 2, Speed: 1}, {Model: false, Cores: 2, Speed: 1}}
	if Heterogeneous(homo1) {
		t.Error("unit-speed servers reported heterogeneous")
	}
	het := []Server{{Model: true, Cores: 2, Speed: 2}, {Model: false, Cores: 2}}
	if !Heterogeneous(het) {
		t.Error("mixed speeds not detected")
	}
}

func TestImbalanceOnScalesBySpeed(t *testing.T) {
	layers := []Layer{
		{Name: "l", Linear: true, Time: 4},
		{Name: "n", Linear: false, Time: 2},
	}
	servers := []Server{
		{Name: "m", Model: true, Cores: 4, Speed: 2}, // twice as fast
		{Name: "d", Model: false, Cores: 4, Speed: 1},
	}
	plan := &Plan{ServerOf: []int{0, 1}, Threads: []int{1, 1}}
	// effective times: 4/(1·2) = 2 and 2/(1·1) = 2 → perfectly balanced
	if got := ImbalanceOn(layers, servers, plan); got != 0 {
		t.Errorf("speed-aware imbalance %v, want 0", got)
	}
	// same plan on homogeneous servers is imbalanced
	if got := Imbalance(layers, plan.Threads); got == 0 {
		t.Error("homogeneous imbalance should be non-zero")
	}
}

// TestGreedyPrefersFastServer: with one fast and one slow model server,
// the heavy layer should land on the fast one.
func TestGreedyPrefersFastServer(t *testing.T) {
	layers := []Layer{
		{Name: "heavy", Linear: true, Time: 10},
		{Name: "light", Linear: true, Time: 1},
		{Name: "non", Linear: false, Time: 2},
	}
	servers := []Server{
		{Name: "m-slow", Model: true, Cores: 4, Speed: 1},
		{Name: "m-fast", Model: true, Cores: 4, Speed: 4},
		{Name: "d", Model: false, Cores: 4},
	}
	plan, err := Greedy(layers, servers)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPlan(layers, servers, plan); err != nil {
		t.Fatal(err)
	}
	if plan.ServerOf[0] != 1 {
		t.Errorf("heavy layer on server %s, want the fast one", servers[plan.ServerOf[0]].Name)
	}
}

// TestSolveHeterogeneousFallsBackToGreedy: Solve must stay valid and
// speed-aware on heterogeneous clusters.
func TestSolveHeterogeneousFallsBackToGreedy(t *testing.T) {
	layers := fourLayers()
	servers := []Server{
		{Name: "m1", Model: true, Cores: 4, Speed: 2},
		{Name: "m2", Model: true, Cores: 4, Speed: 0.5},
		{Name: "d1", Model: false, Cores: 4, Speed: 1},
	}
	plan, err := Solve(layers, servers, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPlan(layers, servers, plan); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(plan.Objective) || plan.Objective < 0 {
		t.Errorf("objective %v", plan.Objective)
	}
	if plan.Exact {
		t.Error("heterogeneous plan must not claim ILP optimality")
	}
}
