// Package alloc implements PP-Stream's load-balanced resource allocation
// (paper Section IV-C): given the profiled execution time T_i of each
// merged primitive layer and a set of servers with known core counts, it
// assigns each layer to exactly one server of the matching provider and
// chooses thread counts y_i, minimizing the sum of pairwise differences
// in per-thread execution time Σ|T_i/y_i − T_i'/y_i'| subject to
//
//	(5) each layer on exactly one server,
//	(6) servers are type-pure (linear layers on model-provider servers,
//	    non-linear layers on data-provider servers),
//	(7) y_i ≥ 1, and
//	(8) threads per server ≤ 2·cores (hyper-threading).
//
// The exact formulation is the paper's ILP, linearized over enumerated
// thread-count columns and solved with internal/ilp's branch-and-bound.
// A greedy LPT + water-filling pass provides the incumbent and a
// fallback when the node budget expires, mirroring what a production
// deployment does when the solver's offline time box is hit.
package alloc

import (
	"fmt"
	"math"
	"sort"
	"time"

	"ppstream/internal/ilp"
)

// Layer describes one merged primitive layer for allocation.
type Layer struct {
	// Name is a human-readable identifier.
	Name string
	// Linear is the paper's I_i: true for linear (model provider),
	// false for non-linear (data provider).
	Linear bool
	// Time is the profiled execution time T_i (seconds per inference).
	Time float64
}

// Server describes one machine available for allocation.
type Server struct {
	Name string
	// Model is true for model-provider servers (hosting linear layers).
	Model bool
	// Cores is the number of physical CPU cores; with hyper-threading
	// the server accepts up to 2·Cores threads (paper Eq. 8).
	Cores int
	// Speed is the server's relative per-thread processing rate
	// (1.0 = baseline; 0 is treated as 1.0). The paper assumes a
	// homogeneous cluster and poses heterogeneity as future work; this
	// extension scales a layer's per-thread time by 1/Speed of its host
	// server in the greedy planner and the plan objective.
	Speed float64
}

// speed returns the server's effective rate.
func (s Server) speed() float64 {
	if s.Speed <= 0 {
		return 1
	}
	return s.Speed
}

// Heterogeneous reports whether any server's speed differs from 1.
func Heterogeneous(servers []Server) bool {
	for _, s := range servers {
		if s.Speed > 0 && s.Speed != 1 {
			return true
		}
	}
	return false
}

// ImbalanceOn computes the Eq. (4) objective with heterogeneous server
// speeds: per-thread times scale by the host's rate.
func ImbalanceOn(layers []Layer, servers []Server, p *Plan) float64 {
	eff := make([]float64, len(layers))
	for i := range layers {
		eff[i] = layers[i].Time / (float64(p.Threads[i]) * servers[p.ServerOf[i]].speed())
	}
	var sum float64
	for i := range eff {
		for j := range eff {
			sum += math.Abs(eff[i] - eff[j])
		}
	}
	return sum
}

// Capacity returns the server's thread capacity.
func (s Server) Capacity() int { return 2 * s.Cores }

// Plan is a resource allocation: layer→server assignment plus thread
// counts.
type Plan struct {
	// ServerOf[i] is the index into the server list for layer i.
	ServerOf []int
	// Threads[i] is y_i.
	Threads []int
	// Objective is Σ_{i,i'} |T_i/y_i − T_i'/y_i'| over ordered pairs.
	Objective float64
	// Exact reports whether the ILP proved optimality (false when the
	// greedy fallback or budget-expired incumbent was used).
	Exact bool
}

// Imbalance computes the paper's Eq. (4) objective for given thread
// counts: the sum over all ordered pairs of |T_i/y_i − T_i'/y_i'|.
func Imbalance(layers []Layer, threads []int) float64 {
	var sum float64
	for i := range layers {
		for j := range layers {
			sum += math.Abs(layers[i].Time/float64(threads[i]) - layers[j].Time/float64(threads[j]))
		}
	}
	return sum
}

// CheckPlan validates a plan against constraints (5)–(8).
func CheckPlan(layers []Layer, servers []Server, p *Plan) error {
	if len(p.ServerOf) != len(layers) || len(p.Threads) != len(layers) {
		return fmt.Errorf("alloc: plan covers %d/%d layers, want %d", len(p.ServerOf), len(p.Threads), len(layers))
	}
	used := make([]int, len(servers))
	for i, l := range layers {
		j := p.ServerOf[i]
		if j < 0 || j >= len(servers) {
			return fmt.Errorf("alloc: layer %d assigned to unknown server %d", i, j)
		}
		if servers[j].Model != l.Linear {
			return fmt.Errorf("alloc: layer %s (linear=%v) on %s server %s violates type purity",
				l.Name, l.Linear, serverKind(servers[j]), servers[j].Name)
		}
		if p.Threads[i] < 1 {
			return fmt.Errorf("alloc: layer %s allocated %d threads, need ≥ 1", l.Name, p.Threads[i])
		}
		used[j] += p.Threads[i]
	}
	for j, u := range used {
		if u > servers[j].Capacity() {
			return fmt.Errorf("alloc: server %s holds %d threads, capacity %d", servers[j].Name, u, servers[j].Capacity())
		}
	}
	return nil
}

func serverKind(s Server) string {
	if s.Model {
		return "model-provider"
	}
	return "data-provider"
}

// Options tunes Solve.
type Options struct {
	// MaxThreads caps the per-layer thread count considered by the ILP
	// (0 = the largest server capacity).
	MaxThreads int
	// MaxNodes is the branch-and-bound budget (0 = 50000).
	MaxNodes int
}

// Even produces the baseline allocation used by the paper's "without
// load-balanced resource allocation" variants (Exp#2/3): CPU cores are
// split evenly across stages of each provider group, ignoring profiled
// times. Stages earlier in the list receive the remainder threads, as
// the paper describes.
func Even(layers []Layer, servers []Server) (*Plan, error) {
	if err := checkInputs(layers, servers); err != nil {
		return nil, err
	}
	plan := &Plan{ServerOf: make([]int, len(layers)), Threads: make([]int, len(layers))}
	for _, model := range []bool{true, false} {
		var lidx, sidx []int
		for i, l := range layers {
			if l.Linear == model {
				lidx = append(lidx, i)
			}
		}
		for j, s := range servers {
			if s.Model == model {
				sidx = append(sidx, j)
			}
		}
		if len(lidx) == 0 {
			continue
		}
		// Round-robin layers over the group's servers, then split each
		// server's capacity evenly among its layers.
		perServer := make([][]int, len(sidx))
		for k, li := range lidx {
			perServer[k%len(sidx)] = append(perServer[k%len(sidx)], li)
		}
		for si, group := range perServer {
			if len(group) == 0 {
				continue
			}
			cap := servers[sidx[si]].Capacity()
			base := cap / len(group)
			extra := cap % len(group)
			if base == 0 {
				return nil, fmt.Errorf("alloc: server %s capacity %d cannot host %d layers",
					servers[sidx[si]].Name, cap, len(group))
			}
			for gi, li := range group {
				plan.ServerOf[li] = sidx[si]
				plan.Threads[li] = base
				if gi < extra {
					plan.Threads[li]++
				}
			}
		}
	}
	plan.Objective = Imbalance(layers, plan.Threads)
	if err := CheckPlan(layers, servers, plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// Greedy computes a good feasible plan quickly: longest-processing-time
// assignment of layers to the least-loaded matching server, then
// water-filling threads onto the layer with the largest per-thread time
// until capacities are exhausted or imbalance stops improving.
func Greedy(layers []Layer, servers []Server) (*Plan, error) {
	if err := checkInputs(layers, servers); err != nil {
		return nil, err
	}
	plan := &Plan{ServerOf: make([]int, len(layers)), Threads: make([]int, len(layers))}
	load := make([]float64, len(servers))
	slots := make([]int, len(servers))
	for j, s := range servers {
		slots[j] = s.Capacity()
	}
	// LPT: biggest layers first, each to the least-loaded compatible
	// server that still has a free slot.
	order := make([]int, len(layers))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return layers[order[a]].Time > layers[order[b]].Time })
	for _, i := range order {
		best := -1
		var bestLoad float64
		for j, s := range servers {
			if s.Model != layers[i].Linear || slots[j] < 1 {
				continue
			}
			// Effective load accounts for heterogeneous speeds: a
			// faster server absorbs more work for the same time.
			effective := (load[j] + layers[i].Time) / s.speed()
			if best < 0 || effective < bestLoad {
				best, bestLoad = j, effective
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("alloc: no compatible server with spare capacity for layer %s", layers[i].Name)
		}
		plan.ServerOf[i] = best
		plan.Threads[i] = 1
		slots[best]--
		load[best] += layers[i].Time
	}
	objective := func() float64 { return ImbalanceOn(layers, servers, plan) }
	// Water-fill: repeatedly add a thread to the layer with the largest
	// effective per-thread time whose server has spare slots.
	for {
		worst, worstVal := -1, -1.0
		for i := range layers {
			if slots[plan.ServerOf[i]] < 1 {
				continue
			}
			v := layers[i].Time / (float64(plan.Threads[i]) * servers[plan.ServerOf[i]].speed())
			if v > worstVal {
				worst, worstVal = i, v
			}
		}
		if worst < 0 {
			break
		}
		before := objective()
		plan.Threads[worst]++
		slots[plan.ServerOf[worst]]--
		if objective() > before {
			// Adding the thread made balance worse and no other layer
			// has a larger per-thread time: stop.
			plan.Threads[worst]--
			slots[plan.ServerOf[worst]]++
			break
		}
	}
	plan.Objective = objective()
	if err := CheckPlan(layers, servers, plan); err != nil {
		return nil, err
	}
	return plan, nil
}

// maxExactVars bounds the ILP size Solve attempts exactly; above it the
// greedy + water-filling plan is used. The paper solves its instances
// offline "within a few hours" on Gurobi; this port boxes the solver so
// engine construction stays interactive, which only affects the largest
// (VGG) stage graphs.
const maxExactVars = 600

// Solve computes the load-balanced allocation by solving the paper's ILP
// exactly (branch-and-bound), falling back to the greedy plan if the
// instance exceeds the exact-solve size box or the solver cannot improve
// on greedy within its node budget.
func Solve(layers []Layer, servers []Server, opts Options) (*Plan, error) {
	greedy, err := Greedy(layers, servers)
	if err != nil {
		return nil, err
	}
	if Heterogeneous(servers) {
		// The paper's ILP assumes a homogeneous cluster (heterogeneity
		// is posed as future work); the extension uses the
		// speed-aware greedy planner.
		return greedy, nil
	}
	prob, dec, err := formulate(layers, servers, opts)
	if err != nil {
		return nil, err
	}
	if prob.NumVars() > maxExactVars {
		return greedy, nil
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 5000
	}
	// Seed the search with the greedy objective so branch-and-bound
	// prunes everything that cannot improve on it.
	bound := greedy.Objective + 1e-9
	sol, err := ilp.Solve(prob, ilp.Options{MaxNodes: maxNodes, IncumbentBound: &bound})
	if err != nil {
		return nil, err
	}
	if sol.Status != ilp.Optimal && sol.Status != ilp.Feasible {
		return greedy, nil
	}
	plan, err := dec(sol.X)
	if err != nil {
		return greedy, nil // decode failure: keep the safe plan
	}
	plan.Exact = sol.Status == ilp.Optimal
	if err := CheckPlan(layers, servers, plan); err != nil {
		return greedy, nil
	}
	if plan.Objective > greedy.Objective+1e-9 {
		return greedy, nil
	}
	return plan, nil
}

func checkInputs(layers []Layer, servers []Server) error {
	if len(layers) == 0 {
		return fmt.Errorf("alloc: no layers")
	}
	if len(servers) == 0 {
		return fmt.Errorf("alloc: no servers")
	}
	var haveModel, haveData bool
	for _, s := range servers {
		if s.Cores <= 0 {
			return fmt.Errorf("alloc: server %s has %d cores", s.Name, s.Cores)
		}
		if s.Model {
			haveModel = true
		} else {
			haveData = true
		}
	}
	for _, l := range layers {
		if l.Time < 0 || math.IsNaN(l.Time) {
			return fmt.Errorf("alloc: layer %s has invalid time %v", l.Name, l.Time)
		}
		if l.Linear && !haveModel {
			return fmt.Errorf("alloc: linear layer %s but no model-provider server", l.Name)
		}
		if !l.Linear && !haveData {
			return fmt.Errorf("alloc: non-linear layer %s but no data-provider server", l.Name)
		}
	}
	return nil
}

// formulate builds the linearized ILP. Variable blocks:
//
//	z[i][t]  binary: layer i uses exactly t threads (t = 1..Ymax)
//	x[i][j]  binary: layer i deployed on server j (compatible only)
//	u[i][j]  integer: threads of layer i counted on server j
//	d[i][i'] continuous: |e_i − e_i'| upper envelope, i < i'
//
// with e_i = Σ_t (T_i/t)·z[i][t]. The objective is 2·Σ_{i<i'} d.
func formulate(layers []Layer, servers []Server, opts Options) (*ilp.Problem, func([]float64) (*Plan, error), error) {
	ymax := opts.MaxThreads
	maxCap := 0
	for _, s := range servers {
		if s.Capacity() > maxCap {
			maxCap = s.Capacity()
		}
	}
	if ymax <= 0 || ymax > maxCap {
		ymax = maxCap
	}
	L := len(layers)
	S := len(servers)

	// variable layout
	nZ := L * ymax
	nX := L * S
	nU := L * S
	nPairs := L * (L - 1) / 2
	n := nZ + nX + nU + nPairs
	zAt := func(i, t int) int { return i*ymax + (t - 1) }
	xAt := func(i, j int) int { return nZ + i*S + j }
	uAt := func(i, j int) int { return nZ + nX + i*S + j }
	dAt := func(p int) int { return nZ + nX + nU + p }

	obj := make([]float64, n)
	pairIdx := map[[2]int]int{}
	{
		p := 0
		for i := 0; i < L; i++ {
			for k := i + 1; k < L; k++ {
				pairIdx[[2]int{i, k}] = p
				obj[dAt(p)] = 2 // ordered-pair objective counts each pair twice
				p++
			}
		}
	}

	upper := make([]float64, n)
	integer := make([]bool, n)
	for i := range upper {
		upper[i] = math.Inf(1)
	}
	for i := 0; i < L; i++ {
		for t := 1; t <= ymax; t++ {
			upper[zAt(i, t)] = 1
			integer[zAt(i, t)] = true
		}
		for j := 0; j < S; j++ {
			upper[xAt(i, j)] = 1
			integer[xAt(i, j)] = true
			upper[uAt(i, j)] = float64(ymax)
			integer[uAt(i, j)] = true
		}
	}

	var cons []ilp.Constraint
	row := func() []float64 { return make([]float64, n) }

	for i := 0; i < L; i++ {
		// Σ_t z = 1 (one thread count chosen)
		c := row()
		for t := 1; t <= ymax; t++ {
			c[zAt(i, t)] = 1
		}
		cons = append(cons, ilp.Constraint{Coeffs: c, Sense: ilp.EQ, RHS: 1})

		// Σ_j x = 1 over compatible servers; incompatible x pinned to 0.
		c = row()
		for j := 0; j < S; j++ {
			if servers[j].Model == layers[i].Linear {
				c[xAt(i, j)] = 1
			} else {
				pin := row()
				pin[xAt(i, j)] = 1
				cons = append(cons, ilp.Constraint{Coeffs: pin, Sense: ilp.EQ, RHS: 0})
				pin2 := row()
				pin2[uAt(i, j)] = 1
				cons = append(cons, ilp.Constraint{Coeffs: pin2, Sense: ilp.EQ, RHS: 0})
			}
		}
		cons = append(cons, ilp.Constraint{Coeffs: c, Sense: ilp.EQ, RHS: 1})

		// Σ_j u_{i,j} = y_i = Σ_t t·z_{i,t}
		c = row()
		for j := 0; j < S; j++ {
			c[uAt(i, j)] = 1
		}
		for t := 1; t <= ymax; t++ {
			c[zAt(i, t)] = -float64(t)
		}
		cons = append(cons, ilp.Constraint{Coeffs: c, Sense: ilp.EQ, RHS: 0})

		for j := 0; j < S; j++ {
			if servers[j].Model != layers[i].Linear {
				continue
			}
			// u ≤ Ymax·x
			c = row()
			c[uAt(i, j)] = 1
			c[xAt(i, j)] = -float64(ymax)
			cons = append(cons, ilp.Constraint{Coeffs: c, Sense: ilp.LE, RHS: 0})
			// u ≥ y − Ymax(1−x)  ⇔  Σ_t t·z − u − Ymax·x ≤ 0 ... rearranged:
			// y − u ≤ Ymax − Ymax·x
			c = row()
			for t := 1; t <= ymax; t++ {
				c[zAt(i, t)] = float64(t)
			}
			c[uAt(i, j)] = -1
			c[xAt(i, j)] = float64(ymax)
			cons = append(cons, ilp.Constraint{Coeffs: c, Sense: ilp.LE, RHS: float64(ymax)})
		}
	}

	// capacity per server: Σ_i u_{i,j} ≤ 2·c_j
	for j := 0; j < S; j++ {
		c := row()
		for i := 0; i < L; i++ {
			c[uAt(i, j)] = 1
		}
		cons = append(cons, ilp.Constraint{Coeffs: c, Sense: ilp.LE, RHS: float64(servers[j].Capacity())})
	}

	// |e_i − e_k| envelope: d ≥ e_i − e_k and d ≥ e_k − e_i with
	// e_i = Σ_t (T_i/t)·z_{i,t}.
	for pair, p := range pairIdx {
		i, k := pair[0], pair[1]
		c1 := row()
		c2 := row()
		for t := 1; t <= ymax; t++ {
			c1[zAt(i, t)] = layers[i].Time / float64(t)
			c1[zAt(k, t)] -= layers[k].Time / float64(t)
			c2[zAt(i, t)] = -layers[i].Time / float64(t)
			c2[zAt(k, t)] += layers[k].Time / float64(t)
		}
		c1[dAt(p)] = -1
		c2[dAt(p)] = -1
		cons = append(cons, ilp.Constraint{Coeffs: c1, Sense: ilp.LE, RHS: 0})
		cons = append(cons, ilp.Constraint{Coeffs: c2, Sense: ilp.LE, RHS: 0})
	}

	prob := &ilp.Problem{Obj: obj, Cons: cons, Upper: upper, Integer: integer}
	decode := func(x []float64) (*Plan, error) {
		plan := &Plan{ServerOf: make([]int, L), Threads: make([]int, L)}
		for i := 0; i < L; i++ {
			plan.Threads[i] = 0
			for t := 1; t <= ymax; t++ {
				if x[zAt(i, t)] > 0.5 {
					plan.Threads[i] = t
					break
				}
			}
			plan.ServerOf[i] = -1
			for j := 0; j < S; j++ {
				if x[xAt(i, j)] > 0.5 {
					plan.ServerOf[i] = j
					break
				}
			}
			if plan.Threads[i] == 0 || plan.ServerOf[i] < 0 {
				return nil, fmt.Errorf("alloc: undecodable solution for layer %d", i)
			}
		}
		plan.Objective = Imbalance(layers, plan.Threads)
		return plan, nil
	}
	return prob, decode, nil
}

// Profile measures T_i for each stage runner by executing it reps times
// on the provided work function and averaging wall-clock time. The paper
// profiles each primitive layer over 100 random training inputs
// (Section IV-C); callers choose reps accordingly.
func Profile(stages []func() error, reps int) ([]float64, error) {
	if reps <= 0 {
		reps = 1
	}
	out := make([]float64, len(stages))
	for i, stage := range stages {
		var total time.Duration
		for r := 0; r < reps; r++ {
			start := time.Now()
			if err := stage(); err != nil {
				return nil, fmt.Errorf("alloc: profiling stage %d: %w", i, err)
			}
			total += time.Since(start)
		}
		out[i] = total.Seconds() / float64(reps)
	}
	return out, nil
}
