package alloc

import (
	"math"
	"testing"
)

// bruteForce enumerates every feasible assignment and thread allocation
// for tiny instances and returns the optimal objective. It is the oracle
// for verifying the ILP path.
func bruteForce(layers []Layer, servers []Server, ymax int) float64 {
	best := math.Inf(1)
	assign := make([]int, len(layers))
	threads := make([]int, len(layers))
	var recurse func(i int)
	checkCapacity := func() bool {
		used := make([]int, len(servers))
		for i := range layers {
			used[assign[i]] += threads[i]
		}
		for j, u := range used {
			if u > servers[j].Capacity() {
				return false
			}
		}
		return true
	}
	var threadRec func(i int)
	threadRec = func(i int) {
		if i == len(layers) {
			if checkCapacity() {
				if obj := Imbalance(layers, threads); obj < best {
					best = obj
				}
			}
			return
		}
		for y := 1; y <= ymax; y++ {
			threads[i] = y
			threadRec(i + 1)
		}
	}
	recurse = func(i int) {
		if i == len(layers) {
			threadRec(0)
			return
		}
		for j, s := range servers {
			if s.Model != layers[i].Linear {
				continue
			}
			assign[i] = j
			recurse(i + 1)
		}
	}
	recurse(0)
	return best
}

// TestSolveMatchesBruteForce verifies the ILP finds the true optimum on
// exhaustively-checkable instances.
func TestSolveMatchesBruteForce(t *testing.T) {
	cases := []struct {
		layers  []Layer
		servers []Server
		ymax    int
	}{
		{
			layers: []Layer{
				{Name: "l1", Linear: true, Time: 4},
				{Name: "n1", Linear: false, Time: 2},
			},
			servers: []Server{
				{Name: "m", Model: true, Cores: 2},
				{Name: "d", Model: false, Cores: 2},
			},
			ymax: 4,
		},
		{
			layers: []Layer{
				{Name: "l1", Linear: true, Time: 6},
				{Name: "n1", Linear: false, Time: 3},
				{Name: "l2", Linear: true, Time: 2},
			},
			servers: []Server{
				{Name: "m1", Model: true, Cores: 2},
				{Name: "d1", Model: false, Cores: 2},
			},
			ymax: 4,
		},
		{
			layers: []Layer{
				{Name: "l1", Linear: true, Time: 5},
				{Name: "n1", Linear: false, Time: 1},
				{Name: "l2", Linear: true, Time: 3},
				{Name: "n2", Linear: false, Time: 2},
			},
			servers: []Server{
				{Name: "m1", Model: true, Cores: 2},
				{Name: "m2", Model: true, Cores: 1},
				{Name: "d1", Model: false, Cores: 2},
			},
			ymax: 4,
		},
	}
	for ci, c := range cases {
		want := bruteForce(c.layers, c.servers, c.ymax)
		plan, err := Solve(c.layers, c.servers, Options{MaxThreads: c.ymax, MaxNodes: 100000})
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if err := CheckPlan(c.layers, c.servers, plan); err != nil {
			t.Fatalf("case %d: invalid plan: %v", ci, err)
		}
		if plan.Objective > want+1e-6 {
			t.Errorf("case %d: solver objective %.6f, brute force optimum %.6f (threads %v)",
				ci, plan.Objective, want, plan.Threads)
		}
	}
}
