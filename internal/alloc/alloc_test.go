package alloc

import (
	"errors"
	"math"
	"testing"
	"time"
)

func fourLayers() []Layer {
	return []Layer{
		{Name: "lin1", Linear: true, Time: 4.0},
		{Name: "non1", Linear: false, Time: 1.0},
		{Name: "lin2", Linear: true, Time: 2.0},
		{Name: "non2", Linear: false, Time: 0.5},
	}
}

func threeServers() []Server {
	return []Server{
		{Name: "m1", Model: true, Cores: 4},
		{Name: "m2", Model: true, Cores: 4},
		{Name: "d1", Model: false, Cores: 4},
	}
}

func TestImbalance(t *testing.T) {
	layers := []Layer{{Time: 4, Linear: true}, {Time: 2, Linear: false}}
	// per-thread times 4 and 2: ordered pairs |4-2| + |2-4| = 4
	if got := Imbalance(layers, []int{1, 1}); got != 4 {
		t.Errorf("Imbalance = %v, want 4", got)
	}
	// 4/2=2 vs 2/1=2: perfectly balanced
	if got := Imbalance(layers, []int{2, 1}); got != 0 {
		t.Errorf("balanced Imbalance = %v, want 0", got)
	}
}

func TestEvenAllocation(t *testing.T) {
	plan, err := Even(fourLayers(), threeServers())
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPlan(fourLayers(), threeServers(), plan); err != nil {
		t.Fatal(err)
	}
	// Even ignores T_i: both linear layers get the same thread budget
	// across the two model servers (one each, capacity 8).
	if plan.Threads[0] != plan.Threads[2] {
		t.Errorf("even split gave %d vs %d threads to the linear layers", plan.Threads[0], plan.Threads[2])
	}
}

func TestGreedyRespectsConstraints(t *testing.T) {
	layers := fourLayers()
	servers := threeServers()
	plan, err := Greedy(layers, servers)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPlan(layers, servers, plan); err != nil {
		t.Fatal(err)
	}
	// The slowest layer must end up with at least as many threads as the
	// fastest layer of the same type.
	if plan.Threads[0] < plan.Threads[2] {
		t.Errorf("lin1 (T=4) got %d threads, lin2 (T=2) got %d", plan.Threads[0], plan.Threads[2])
	}
}

func TestSolveBeatsEven(t *testing.T) {
	layers := fourLayers()
	servers := threeServers()
	even, err := Even(layers, servers)
	if err != nil {
		t.Fatal(err)
	}
	solved, err := Solve(layers, servers, Options{MaxThreads: 8, MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPlan(layers, servers, solved); err != nil {
		t.Fatal(err)
	}
	if solved.Objective > even.Objective+1e-9 {
		t.Errorf("solver objective %v worse than even split %v", solved.Objective, even.Objective)
	}
}

func TestSolveBalancesPerfectlyWhenPossible(t *testing.T) {
	// T = 4 and 2 with ample capacity: y = 2k and k equalizes exactly.
	layers := []Layer{
		{Name: "lin", Linear: true, Time: 4},
		{Name: "non", Linear: false, Time: 2},
	}
	servers := []Server{
		{Name: "m", Model: true, Cores: 2},
		{Name: "d", Model: false, Cores: 2},
	}
	plan, err := Solve(layers, servers, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Objective > 1e-9 {
		t.Errorf("objective %v, expected perfect balance (threads %v)", plan.Objective, plan.Threads)
	}
	r := layers[0].Time / float64(plan.Threads[0])
	r2 := layers[1].Time / float64(plan.Threads[1])
	if math.Abs(r-r2) > 1e-9 {
		t.Errorf("per-thread times %v vs %v", r, r2)
	}
}

func TestCheckPlanRejects(t *testing.T) {
	layers := fourLayers()
	servers := threeServers()
	good, err := Greedy(layers, servers)
	if err != nil {
		t.Fatal(err)
	}
	// type violation: put a linear layer on the data server
	bad := *good
	bad.ServerOf = append([]int(nil), good.ServerOf...)
	bad.ServerOf[0] = 2
	if err := CheckPlan(layers, servers, &bad); err == nil {
		t.Error("type-impure plan accepted")
	}
	// zero threads
	bad2 := *good
	bad2.Threads = append([]int(nil), good.Threads...)
	bad2.Threads[1] = 0
	if err := CheckPlan(layers, servers, &bad2); err == nil {
		t.Error("zero-thread plan accepted")
	}
	// over capacity
	bad3 := *good
	bad3.Threads = append([]int(nil), good.Threads...)
	bad3.Threads[0] = 1000
	if err := CheckPlan(layers, servers, &bad3); err == nil {
		t.Error("over-capacity plan accepted")
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Even(nil, threeServers()); err == nil {
		t.Error("no layers accepted")
	}
	if _, err := Even(fourLayers(), nil); err == nil {
		t.Error("no servers accepted")
	}
	onlyModel := []Server{{Name: "m", Model: true, Cores: 2}}
	if _, err := Greedy(fourLayers(), onlyModel); err == nil {
		t.Error("missing data-provider server accepted")
	}
	badTime := []Layer{{Name: "l", Linear: true, Time: math.NaN()}}
	if _, err := Greedy(badTime, threeServers()); err == nil {
		t.Error("NaN time accepted")
	}
}

func TestGreedyCapacityExhaustion(t *testing.T) {
	// 3 linear layers but a single model server with capacity 2.
	layers := []Layer{
		{Name: "a", Linear: true, Time: 1},
		{Name: "b", Linear: true, Time: 1},
		{Name: "c", Linear: true, Time: 1},
		{Name: "n", Linear: false, Time: 1},
	}
	servers := []Server{
		{Name: "m", Model: true, Cores: 1}, // capacity 2 < 3 layers
		{Name: "d", Model: false, Cores: 1},
	}
	if _, err := Greedy(layers, servers); err == nil {
		t.Error("infeasible capacity accepted")
	}
}

func TestLargerInstanceStaysFeasible(t *testing.T) {
	// MNIST-3-like: 5 linear + 4 non-linear stages, Table III servers.
	layers := []Layer{
		{Name: "l1", Linear: true, Time: 3.1},
		{Name: "n1", Linear: false, Time: 0.2},
		{Name: "l2", Linear: true, Time: 5.4},
		{Name: "n2", Linear: false, Time: 0.25},
		{Name: "l3", Linear: true, Time: 1.2},
		{Name: "n3", Linear: false, Time: 0.1},
		{Name: "l4", Linear: true, Time: 0.8},
		{Name: "n4", Linear: false, Time: 0.15},
	}
	servers := []Server{
		{Name: "m1", Model: true, Cores: 6},
		{Name: "m2", Model: true, Cores: 6},
		{Name: "d1", Model: false, Cores: 6},
		{Name: "d2", Model: false, Cores: 6},
	}
	start := time.Now()
	plan, err := Solve(layers, servers, Options{MaxThreads: 12, MaxNodes: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPlan(layers, servers, plan); err != nil {
		t.Fatal(err)
	}
	even, _ := Even(layers, servers)
	if plan.Objective > even.Objective {
		t.Errorf("solve %v worse than even %v", plan.Objective, even.Objective)
	}
	t.Logf("8-layer solve took %v, objective %.3f (even %.3f, exact=%v)",
		time.Since(start), plan.Objective, even.Objective, plan.Exact)
}

func TestProfile(t *testing.T) {
	calls := 0
	times, err := Profile([]func() error{
		func() error { calls++; time.Sleep(time.Millisecond); return nil },
		func() error { calls++; return nil },
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Errorf("profile made %d calls, want 6", calls)
	}
	if times[0] < times[1] {
		t.Errorf("sleeping stage profiled faster: %v", times)
	}
	boom := errors.New("boom")
	if _, err := Profile([]func() error{func() error { return boom }}, 1); err == nil {
		t.Error("stage error swallowed")
	}
}
