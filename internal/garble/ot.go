package garble

import (
	"crypto/rand"
	"fmt"
	"math/big"

	"ppstream/internal/paillier"
)

// OT implements semi-honest 1-out-of-2 oblivious transfer over Paillier:
// the receiver sends an encryption of its choice bit b; the sender
// replies with E(m0 + b·(m1 − m0)) computed homomorphically; the
// receiver decrypts m_b and learns nothing about m_{1−b}, while the
// sender learns nothing about b (semantic security of the encryption).
//
// It transfers wire labels (128-bit), which fit comfortably in the
// message space of any supported key.
type OT struct {
	receiverKey *paillier.PrivateKey
}

// NewOT creates an OT context with a fresh receiver key of the given
// size (use ≥ 256 bits; labels are 128-bit).
func NewOT(bits int) (*OT, error) {
	key, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, err
	}
	return &OT{receiverKey: key}, nil
}

// Choose produces the receiver's first message for choice bit b.
func (o *OT) Choose(b bool) (*paillier.Ciphertext, error) {
	v := int64(0)
	if b {
		v = 1
	}
	return o.receiverKey.PublicKey.EncryptInt64(rand.Reader, v)
}

// Transfer is the sender's reply: E(m0) · E(b)^{m1−m0}.
func Transfer(pk *paillier.PublicKey, choice *paillier.Ciphertext, m0, m1 Label) (*paillier.Ciphertext, error) {
	i0 := new(big.Int).SetBytes(m0[:])
	i1 := new(big.Int).SetBytes(m1[:])
	diff := new(big.Int).Sub(i1, i0)
	term, err := pk.MulScalar(choice, diff)
	if err != nil {
		return nil, err
	}
	return pk.AddPlain(term, i0)
}

// Receive decrypts the sender's reply into the chosen label.
func (o *OT) Receive(reply *paillier.Ciphertext) (Label, error) {
	var out Label
	m, err := o.receiverKey.Decrypt(reply)
	if err != nil {
		return out, err
	}
	if m.Sign() < 0 || m.BitLen() > LabelSize*8 {
		return out, fmt.Errorf("garble: OT reply out of label range (%d bits)", m.BitLen())
	}
	m.FillBytes(out[:])
	return out, nil
}

// PublicKey exposes the receiver's public key for the sender side.
func (o *OT) PublicKey() *paillier.PublicKey { return &o.receiverKey.PublicKey }

// TransferLabels runs the full OT phase for all evaluator input bits:
// for each bit, the receiver chooses, the sender transfers the matching
// label pair, and the receiver decrypts. Returns the evaluator's labels
// and the number of ciphertexts exchanged.
func TransferLabels(g *Garbling, ot *OT, bits []bool) ([]Label, int, error) {
	if len(bits) != g.circuit.NEval {
		return nil, 0, fmt.Errorf("garble: %d evaluator bits, circuit wants %d", len(bits), g.circuit.NEval)
	}
	labels := make([]Label, len(bits))
	exchanged := 0
	for i, b := range bits {
		choice, err := ot.Choose(b)
		if err != nil {
			return nil, exchanged, err
		}
		m0, m1, err := g.EvalLabelPair(i)
		if err != nil {
			return nil, exchanged, err
		}
		reply, err := Transfer(ot.PublicKey(), choice, m0, m1)
		if err != nil {
			return nil, exchanged, err
		}
		exchanged += 2 // choice + reply
		labels[i], err = ot.Receive(reply)
		if err != nil {
			return nil, exchanged, err
		}
	}
	return labels, exchanged, nil
}
