package garble

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// LabelSize is the wire-label size in bytes (128-bit security labels).
const LabelSize = 16

// Label is a wire label.
type Label [LabelSize]byte

func (l Label) xor(o Label) Label {
	var out Label
	for i := range l {
		out[i] = l[i] ^ o[i]
	}
	return out
}

// permBit returns the label's point-and-permute bit (lsb of last byte).
func (l Label) permBit() int { return int(l[LabelSize-1] & 1) }

// Garbled is the garbler's output: tables and decode information. It is
// what crosses the wire to the evaluator (plus input labels).
type Garbled struct {
	// Tables holds, per AND gate (in gate order), the four encrypted
	// rows.
	Tables [][4]Label
	// Decode holds, per output wire, the permute bit of the FALSE
	// label: output bit = lsb(evaluated label) ⊕ Decode[i].
	Decode []int
}

// Garbling is the garbler's secret state.
type Garbling struct {
	circuit *Circuit
	delta   Label // free-XOR global offset, lsb forced to 1
	zero    []Label
	public  Garbled
}

// Garble garbles the circuit with fresh randomness.
func Garble(c *Circuit) (*Garbling, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	g := &Garbling{circuit: c, zero: make([]Label, c.NWires())}
	if _, err := rand.Read(g.delta[:]); err != nil {
		return nil, fmt.Errorf("garble: randomness: %w", err)
	}
	g.delta[LabelSize-1] |= 1 // point-and-permute needs lsb(delta)=1
	nin := c.NGarbler + c.NEval
	for i := 0; i < nin; i++ {
		if _, err := rand.Read(g.zero[i][:]); err != nil {
			return nil, err
		}
	}
	gateID := 0
	for _, gate := range c.Gates {
		switch gate.Type {
		case XOR:
			g.zero[gate.Out] = g.zero[gate.A].xor(g.zero[gate.B])
		case NOT:
			g.zero[gate.Out] = g.zero[gate.A].xor(g.delta)
		case AND:
			a0 := g.zero[gate.A]
			b0 := g.zero[gate.B]
			var out0 Label
			if _, err := rand.Read(out0[:]); err != nil {
				return nil, err
			}
			var table [4]Label
			for va := 0; va <= 1; va++ {
				for vb := 0; vb <= 1; vb++ {
					la, lb := a0, b0
					if va == 1 {
						la = la.xor(g.delta)
					}
					if vb == 1 {
						lb = lb.xor(g.delta)
					}
					lout := out0
					if va&vb == 1 {
						lout = lout.xor(g.delta)
					}
					row := la.permBit()<<1 | lb.permBit()
					table[row] = hashGate(la, lb, gateID).xor(lout)
				}
			}
			g.public.Tables = append(g.public.Tables, table)
			g.zero[gate.Out] = out0
			gateID++
		default:
			return nil, fmt.Errorf("garble: unknown gate type %v", gate.Type)
		}
	}
	g.public.Decode = make([]int, len(c.Outputs))
	for i, w := range c.Outputs {
		g.public.Decode[i] = g.zero[w].permBit()
	}
	return g, nil
}

// Public returns the data shipped to the evaluator (tables + decode).
func (g *Garbling) Public() *Garbled { return &g.public }

// GarblerLabels selects the garbler's own input labels for its bits.
func (g *Garbling) GarblerLabels(bits []bool) ([]Label, error) {
	if len(bits) != g.circuit.NGarbler {
		return nil, fmt.Errorf("garble: %d garbler bits, circuit wants %d", len(bits), g.circuit.NGarbler)
	}
	out := make([]Label, len(bits))
	for i, b := range bits {
		out[i] = g.zero[i]
		if b {
			out[i] = out[i].xor(g.delta)
		}
	}
	return out, nil
}

// EvalLabelPair returns both labels of the evaluator's i-th input wire —
// the sender inputs to the oblivious transfer.
func (g *Garbling) EvalLabelPair(i int) (zero, one Label, err error) {
	if i < 0 || i >= g.circuit.NEval {
		return zero, one, fmt.Errorf("garble: no evaluator input %d", i)
	}
	w := g.circuit.NGarbler + i
	return g.zero[w], g.zero[w].xor(g.delta), nil
}

// Evaluate runs the garbled circuit with one label per input wire and
// returns the decoded output bits.
func Evaluate(c *Circuit, pub *Garbled, garblerLabels, evalLabels []Label) ([]bool, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(garblerLabels) != c.NGarbler || len(evalLabels) != c.NEval {
		return nil, fmt.Errorf("garble: label counts %d/%d, circuit wants %d/%d",
			len(garblerLabels), len(evalLabels), c.NGarbler, c.NEval)
	}
	labels := make([]Label, c.NWires())
	copy(labels, garblerLabels)
	copy(labels[c.NGarbler:], evalLabels)
	gateID := 0
	for _, gate := range c.Gates {
		switch gate.Type {
		case XOR:
			labels[gate.Out] = labels[gate.A].xor(labels[gate.B])
		case NOT:
			labels[gate.Out] = labels[gate.A] // semantics flip via decode
		case AND:
			if gateID >= len(pub.Tables) {
				return nil, fmt.Errorf("garble: missing table for AND gate %d", gateID)
			}
			la, lb := labels[gate.A], labels[gate.B]
			row := la.permBit()<<1 | lb.permBit()
			labels[gate.Out] = hashGate(la, lb, gateID).xor(pub.Tables[gateID][row])
			gateID++
		}
	}
	if len(pub.Decode) != len(c.Outputs) {
		return nil, fmt.Errorf("garble: decode length %d for %d outputs", len(pub.Decode), len(c.Outputs))
	}
	out := make([]bool, len(c.Outputs))
	for i, w := range c.Outputs {
		out[i] = labels[w].permBit() != pub.Decode[i]
	}
	return out, nil
}

// hashGate is the garbling hash H(a, b, gid).
func hashGate(a, b Label, gateID int) Label {
	h := sha256.New()
	h.Write(a[:])
	h.Write(b[:])
	var gid [8]byte
	binary.LittleEndian.PutUint64(gid[:], uint64(gateID))
	h.Write(gid[:])
	var out Label
	copy(out[:], h.Sum(nil))
	return out
}

// NOT gates flip semantics through the free-XOR delta on the garbler
// side; the evaluator's label passes through unchanged but corresponds
// to the flipped truth value because the garbler defined
// zero[out] = zero[in] ⊕ delta. No table needed.
var _ = NOT
