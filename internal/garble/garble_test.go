package garble

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBuilderAndValidate(t *testing.T) {
	b := NewBuilder(2, 1)
	x := b.XOR(b.GarblerInput(0), b.EvalInput(0))
	y := b.AND(x, b.GarblerInput(1))
	b.Output(b.NOT(y))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.ANDCount() != 1 {
		t.Errorf("AND count %d", c.ANDCount())
	}
	if c.NWires() != 6 {
		t.Errorf("wires %d", c.NWires())
	}
	// malformed: output references undefined wire
	bad := &Circuit{NGarbler: 1, NEval: 0, Outputs: []int{5}}
	if err := bad.Validate(); err == nil {
		t.Error("undefined output accepted")
	}
	bad2 := &Circuit{NGarbler: 0, NEval: 0}
	if err := bad2.Validate(); err == nil {
		t.Error("inputless circuit accepted")
	}
}

// evalPlain computes the plain-boolean result of a circuit.
func evalPlain(c *Circuit, gBits, eBits []bool) []bool {
	wires := make([]bool, c.NWires())
	copy(wires, gBits)
	copy(wires[c.NGarbler:], eBits)
	for _, g := range c.Gates {
		switch g.Type {
		case XOR:
			wires[g.Out] = wires[g.A] != wires[g.B]
		case AND:
			wires[g.Out] = wires[g.A] && wires[g.B]
		case NOT:
			wires[g.Out] = !wires[g.A]
		}
	}
	out := make([]bool, len(c.Outputs))
	for i, w := range c.Outputs {
		out[i] = wires[w]
	}
	return out
}

// garbledEval garbles and evaluates with directly handed labels (no OT).
func garbledEval(t *testing.T, c *Circuit, gBits, eBits []bool) []bool {
	t.Helper()
	g, err := Garble(c)
	if err != nil {
		t.Fatal(err)
	}
	gl, err := g.GarblerLabels(gBits)
	if err != nil {
		t.Fatal(err)
	}
	el := make([]Label, len(eBits))
	for i, b := range eBits {
		zero, one, err := g.EvalLabelPair(i)
		if err != nil {
			t.Fatal(err)
		}
		if b {
			el[i] = one
		} else {
			el[i] = zero
		}
	}
	out, err := Evaluate(c, g.Public(), gl, el)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestGateTruthTables(t *testing.T) {
	for _, tt := range []struct {
		name  string
		build func(b *Builder) int
		truth func(a, x bool) bool
	}{
		{"xor", func(b *Builder) int { return b.XOR(0, 1) }, func(a, x bool) bool { return a != x }},
		{"and", func(b *Builder) int { return b.AND(0, 1) }, func(a, x bool) bool { return a && x }},
		{"nand", func(b *Builder) int { return b.NOT(b.AND(0, 1)) }, func(a, x bool) bool { return !(a && x) }},
	} {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder(1, 1)
			b.Output(tt.build(b))
			c, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			for _, ga := range []bool{false, true} {
				for _, ea := range []bool{false, true} {
					got := garbledEval(t, c, []bool{ga}, []bool{ea})
					want := tt.truth(ga, ea)
					if got[0] != want {
						t.Errorf("%s(%v,%v) = %v, want %v", tt.name, ga, ea, got[0], want)
					}
				}
			}
		})
	}
}

func TestAdd64Circuit(t *testing.T) {
	b := NewBuilder(64, 64)
	a := make([]int, 64)
	x := make([]int, 64)
	for i := range a {
		a[i], x[i] = b.GarblerInput(i), b.EvalInput(i)
	}
	sum, err := b.Add64(a, x)
	if err != nil {
		t.Fatal(err)
	}
	b.Output(sum...)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		va, vx := rng.Uint64(), rng.Uint64()
		got := FromBits64(garbledEval(t, c, Bits64(va), Bits64(vx)))
		if got != va+vx {
			t.Errorf("Add64(%d,%d) = %d, want %d", va, vx, got, va+vx)
		}
	}
}

func TestCompare64(t *testing.T) {
	c, err := Compare64()
	if err != nil {
		t.Fatal(err)
	}
	asRing := func(v int64) uint64 { return uint64(v) }
	cases := []struct {
		a, x uint64
		neg  bool
	}{
		{5, 10, false},
		{asRing(-7), 3, true},       // sum = -4
		{asRing(-7), 7, false},      // sum = 0
		{asRing(-1) << 62, 0, true}, // large negative
		{1 << 62, 1 << 62, true},    // overflow to negative
	}
	for _, tc := range cases {
		got := garbledEval(t, c, Bits64(tc.a), Bits64(tc.x))
		if got[0] != tc.neg {
			t.Errorf("sign(%d+%d) = %v, want %v", int64(tc.a), int64(tc.x), got[0], tc.neg)
		}
	}
}

// TestReLUSharesCircuit verifies the full EzPC-style ReLU conversion:
// shared input, masked shared output, against plaintext ReLU.
func TestReLUSharesCircuit(t *testing.T) {
	c, err := ReLUShares()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ReLU circuit: %d AND gates, %d wires", c.ANDCount(), c.NWires())
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 6; trial++ {
		x := int64(rng.Intn(2_000_001) - 1_000_000)
		x0 := rng.Uint64()
		x1 := uint64(x) - x0
		r := rng.Uint64()
		gBits := append(Bits64(x0), Bits64(-r)...)
		outBits := garbledEval(t, c, gBits, Bits64(x1))
		yMinusR := FromBits64(outBits)
		y := int64(yMinusR + r) // reconstruct: evaluator share + garbler share
		want := x
		if want < 0 {
			want = 0
		}
		if y != want {
			t.Errorf("ReLU(%d) reconstructed %d, want %d", x, y, want)
		}
	}
}

// Property: the garbled evaluation of a random small circuit matches the
// plain evaluation.
func TestGarbledMatchesPlainProperty(t *testing.T) {
	f := func(seed int64, gRaw, eRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(4, 4)
		wires := []int{0, 1, 2, 3, 4, 5, 6, 7}
		for i := 0; i < 12; i++ {
			a := wires[rng.Intn(len(wires))]
			x := wires[rng.Intn(len(wires))]
			var out int
			switch rng.Intn(3) {
			case 0:
				out = b.XOR(a, x)
			case 1:
				out = b.AND(a, x)
			default:
				out = b.NOT(a)
			}
			wires = append(wires, out)
		}
		b.Output(wires[len(wires)-3:]...)
		c, err := b.Build()
		if err != nil {
			return false
		}
		gBits := make([]bool, 4)
		eBits := make([]bool, 4)
		for i := 0; i < 4; i++ {
			gBits[i] = gRaw>>uint(i)&1 == 1
			eBits[i] = eRaw>>uint(i)&1 == 1
		}
		g, err := Garble(c)
		if err != nil {
			return false
		}
		gl, err := g.GarblerLabels(gBits)
		if err != nil {
			return false
		}
		el := make([]Label, 4)
		for i, bit := range eBits {
			z, o, err := g.EvalLabelPair(i)
			if err != nil {
				return false
			}
			if bit {
				el[i] = o
			} else {
				el[i] = z
			}
		}
		got, err := Evaluate(c, g.Public(), gl, el)
		if err != nil {
			return false
		}
		want := evalPlain(c, gBits, eBits)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

var (
	otOnce sync.Once
	otCtx  *OT
	otErr  error
)

func sharedOT(t *testing.T) *OT {
	otOnce.Do(func() { otCtx, otErr = NewOT(256) })
	if otErr != nil {
		t.Fatal(otErr)
	}
	return otCtx
}

func TestOTTransfersCorrectLabel(t *testing.T) {
	ot := sharedOT(t)
	var m0, m1 Label
	for i := range m0 {
		m0[i], m1[i] = byte(i), byte(255-i)
	}
	for _, b := range []bool{false, true} {
		choice, err := ot.Choose(b)
		if err != nil {
			t.Fatal(err)
		}
		reply, err := Transfer(ot.PublicKey(), choice, m0, m1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ot.Receive(reply)
		if err != nil {
			t.Fatal(err)
		}
		want := m0
		if b {
			want = m1
		}
		if got != want {
			t.Errorf("OT(b=%v) returned wrong label", b)
		}
	}
}

// TestEndToEndWithOT runs the ReLU circuit with labels obtained through
// the oblivious transfer, i.e. the complete two-party flow.
func TestEndToEndWithOT(t *testing.T) {
	c, err := ReLUShares()
	if err != nil {
		t.Fatal(err)
	}
	g, err := Garble(c)
	if err != nil {
		t.Fatal(err)
	}
	ot := sharedOT(t)
	rng := rand.New(rand.NewSource(12))
	x := int64(-4321)
	x0 := rng.Uint64()
	x1 := uint64(x) - x0
	r := rng.Uint64()
	gl, err := g.GarblerLabels(append(Bits64(x0), Bits64(-r)...))
	if err != nil {
		t.Fatal(err)
	}
	el, exchanged, err := TransferLabels(g, ot, Bits64(x1))
	if err != nil {
		t.Fatal(err)
	}
	if exchanged != 2*64 {
		t.Errorf("OT exchanged %d ciphertexts, want 128", exchanged)
	}
	out, err := Evaluate(c, g.Public(), gl, el)
	if err != nil {
		t.Fatal(err)
	}
	y := int64(FromBits64(out) + r)
	if y != 0 { // ReLU(-4321) = 0
		t.Errorf("ReLU(-4321) = %d", y)
	}
}
