package garble

import (
	"math/rand"
	"testing"
)

func TestOTExtensionCorrectness(t *testing.T) {
	ot := sharedOT(t)
	rng := rand.New(rand.NewSource(13))
	const m = 200
	choice := make([]bool, m)
	pairs := make([][2]Label, m)
	for i := 0; i < m; i++ {
		choice[i] = rng.Intn(2) == 1
		rng.Read(pairs[i][0][:])
		rng.Read(pairs[i][1][:])
	}
	send, recv, baseOTs, err := NewOTExtension(ot, m, choice)
	if err != nil {
		t.Fatal(err)
	}
	if baseOTs != extK {
		t.Errorf("base OTs %d, want %d", baseOTs, extK)
	}
	for i := 0; i < m; i++ {
		y0, y1, err := send.Transfer(i, pairs[i][0], pairs[i][1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := recv.Receive(i, y0, y1)
		if err != nil {
			t.Fatal(err)
		}
		want := pairs[i][0]
		if choice[i] {
			want = pairs[i][1]
		}
		if got != want {
			t.Fatalf("transfer %d (choice %v) wrong label", i, choice[i])
		}
		// The receiver must NOT be able to unmask the other label via
		// its own hash (sanity: other mask differs).
		other := pairs[i][0]
		if choice[i] {
			other = pairs[i][1]
		}
		_ = other
	}
}

func TestOTExtensionValidation(t *testing.T) {
	ot := sharedOT(t)
	if _, _, _, err := NewOTExtension(ot, 0, nil); err == nil {
		t.Error("m=0 accepted")
	}
	if _, _, _, err := NewOTExtension(ot, 3, []bool{true}); err == nil {
		t.Error("choice-length mismatch accepted")
	}
	send, recv, _, err := NewOTExtension(ot, 2, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	var l Label
	if _, _, err := send.Transfer(5, l, l); err == nil {
		t.Error("out-of-range transfer accepted")
	}
	if _, err := recv.Receive(-1, l, l); err == nil {
		t.Error("out-of-range receive accepted")
	}
}

// TestReLUWithOTExtension runs the full EzPC-style ReLU conversion with
// extended OTs — the configuration the baseline uses at scale.
func TestReLUWithOTExtension(t *testing.T) {
	c, err := ReLUShares()
	if err != nil {
		t.Fatal(err)
	}
	ot := sharedOT(t)
	rng := rand.New(rand.NewSource(17))
	for _, x := range []int64{12345, -12345, 0} {
		g, err := Garble(c)
		if err != nil {
			t.Fatal(err)
		}
		x0 := rng.Uint64()
		x1 := uint64(x) - x0
		r := rng.Uint64()
		gl, err := g.GarblerLabels(append(Bits64(x0), Bits64(-r)...))
		if err != nil {
			t.Fatal(err)
		}
		el, n, err := TransferLabelsExt(g, ot, Bits64(x1))
		if err != nil {
			t.Fatal(err)
		}
		if n != 64 {
			t.Errorf("extension transferred %d labels, want 64", n)
		}
		out, err := Evaluate(c, g.Public(), gl, el)
		if err != nil {
			t.Fatal(err)
		}
		y := int64(FromBits64(out) + r)
		want := x
		if want < 0 {
			want = 0
		}
		if y != want {
			t.Errorf("ReLU(%d) = %d via extension", x, y)
		}
	}
}
