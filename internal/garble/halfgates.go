package garble

import (
	"crypto/rand"
	"fmt"
)

// Half-gates garbling (Zahur, Rosulek, Evans — EUROCRYPT 2015): each AND
// gate costs two ciphertexts instead of point-and-permute's four, with
// XOR still free. The construction splits a∧b into a garbler half
// a∧p_b (the garbler knows b's permute bit p_b) and an evaluator half
// a∧(b⊕p_b) (the evaluator learns b⊕p_b from its label's permute bit):
//
//	T_G = H(A₀,2j) ⊕ H(A₁,2j) ⊕ p_b·Δ      W_G = H(A₀,2j) ⊕ p_a·T_G
//	T_E = H(B₀,2j+1) ⊕ H(B₁,2j+1) ⊕ A₀     W_E = H(B₀,2j+1) ⊕ p_b·(T_E ⊕ A₀)
//	out₀ = W_G ⊕ W_E, table = (T_G, T_E)
//
// evaluation with labels A, B (permute bits s_a, s_b):
//
//	W = H(A,2j) ⊕ s_a·T_G ⊕ H(B,2j+1) ⊕ s_b·(T_E ⊕ A)
//
// Halving the tables halves the garbled-circuit bytes on the wire — the
// dominant communication of the EzPC-style baseline — which is why
// production GC systems use it; the ablation benchmarks compare both
// schemes.

// GarbledHG is the evaluator-visible part of a half-gates garbling.
type GarbledHG struct {
	// Tables holds two rows per AND gate in gate order.
	Tables [][2]Label
	// Decode holds per-output permute bits of the FALSE labels.
	Decode []int
}

// GarblingHG is the garbler's secret state for half-gates.
type GarblingHG struct {
	circuit *Circuit
	delta   Label
	zero    []Label
	public  GarbledHG
}

// GarbleHG garbles the circuit with the half-gates scheme.
func GarbleHG(c *Circuit) (*GarblingHG, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	g := &GarblingHG{circuit: c, zero: make([]Label, c.NWires())}
	if _, err := rand.Read(g.delta[:]); err != nil {
		return nil, fmt.Errorf("garble: randomness: %w", err)
	}
	g.delta[LabelSize-1] |= 1
	nin := c.NGarbler + c.NEval
	for i := 0; i < nin; i++ {
		if _, err := rand.Read(g.zero[i][:]); err != nil {
			return nil, err
		}
	}
	gateID := 0
	for _, gate := range c.Gates {
		switch gate.Type {
		case XOR:
			g.zero[gate.Out] = g.zero[gate.A].xor(g.zero[gate.B])
		case NOT:
			g.zero[gate.Out] = g.zero[gate.A].xor(g.delta)
		case AND:
			a0 := g.zero[gate.A]
			a1 := a0.xor(g.delta)
			b0 := g.zero[gate.B]
			b1 := b0.xor(g.delta)
			pa := a0.permBit()
			pb := b0.permBit()

			hA0 := hashGate(a0, tweak(gateID, 0), 2*gateID)
			hA1 := hashGate(a1, tweak(gateID, 0), 2*gateID)
			tg := hA0.xor(hA1)
			if pb == 1 {
				tg = tg.xor(g.delta)
			}
			wg := hA0
			if pa == 1 {
				wg = wg.xor(tg)
			}

			hB0 := hashGate(b0, tweak(gateID, 1), 2*gateID+1)
			hB1 := hashGate(b1, tweak(gateID, 1), 2*gateID+1)
			te := hB0.xor(hB1).xor(a0)
			we := hB0
			if pb == 1 {
				we = we.xor(te.xor(a0))
			}

			g.zero[gate.Out] = wg.xor(we)
			g.public.Tables = append(g.public.Tables, [2]Label{tg, te})
			gateID++
		default:
			return nil, fmt.Errorf("garble: unknown gate type %v", gate.Type)
		}
	}
	g.public.Decode = make([]int, len(c.Outputs))
	for i, w := range c.Outputs {
		g.public.Decode[i] = g.zero[w].permBit()
	}
	return g, nil
}

// tweak gives the two halves of gate j distinct hash domains.
func tweak(gateID, half int) Label {
	var t Label
	t[0] = byte(half + 1)
	t[1] = byte(gateID)
	t[2] = byte(gateID >> 8)
	t[3] = byte(gateID >> 16)
	return t
}

// Public returns the evaluator's view.
func (g *GarblingHG) Public() *GarbledHG { return &g.public }

// GarblerLabels selects the garbler's input labels.
func (g *GarblingHG) GarblerLabels(bits []bool) ([]Label, error) {
	if len(bits) != g.circuit.NGarbler {
		return nil, fmt.Errorf("garble: %d garbler bits, circuit wants %d", len(bits), g.circuit.NGarbler)
	}
	out := make([]Label, len(bits))
	for i, b := range bits {
		out[i] = g.zero[i]
		if b {
			out[i] = out[i].xor(g.delta)
		}
	}
	return out, nil
}

// EvalLabelPair returns both labels of evaluator input i (for OT).
func (g *GarblingHG) EvalLabelPair(i int) (zero, one Label, err error) {
	if i < 0 || i >= g.circuit.NEval {
		return zero, one, fmt.Errorf("garble: no evaluator input %d", i)
	}
	w := g.circuit.NGarbler + i
	return g.zero[w], g.zero[w].xor(g.delta), nil
}

// EvaluateHG evaluates a half-gates garbled circuit.
func EvaluateHG(c *Circuit, pub *GarbledHG, garblerLabels, evalLabels []Label) ([]bool, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(garblerLabels) != c.NGarbler || len(evalLabels) != c.NEval {
		return nil, fmt.Errorf("garble: label counts %d/%d, circuit wants %d/%d",
			len(garblerLabels), len(evalLabels), c.NGarbler, c.NEval)
	}
	labels := make([]Label, c.NWires())
	copy(labels, garblerLabels)
	copy(labels[c.NGarbler:], evalLabels)
	gateID := 0
	for _, gate := range c.Gates {
		switch gate.Type {
		case XOR:
			labels[gate.Out] = labels[gate.A].xor(labels[gate.B])
		case NOT:
			labels[gate.Out] = labels[gate.A]
		case AND:
			if gateID >= len(pub.Tables) {
				return nil, fmt.Errorf("garble: missing table for AND gate %d", gateID)
			}
			a := labels[gate.A]
			b := labels[gate.B]
			tg, te := pub.Tables[gateID][0], pub.Tables[gateID][1]
			w := hashGate(a, tweak(gateID, 0), 2*gateID)
			if a.permBit() == 1 {
				w = w.xor(tg)
			}
			wE := hashGate(b, tweak(gateID, 1), 2*gateID+1)
			if b.permBit() == 1 {
				wE = wE.xor(te.xor(a))
			}
			labels[gate.Out] = w.xor(wE)
			gateID++
		}
	}
	if len(pub.Decode) != len(c.Outputs) {
		return nil, fmt.Errorf("garble: decode length %d for %d outputs", len(pub.Decode), len(c.Outputs))
	}
	out := make([]bool, len(c.Outputs))
	for i, w := range c.Outputs {
		out[i] = labels[w].permBit() != pub.Decode[i]
	}
	return out, nil
}
