// Package garble implements Yao's garbled circuits with free-XOR and
// point-and-permute, plus a Paillier-based 1-out-of-2 oblivious transfer
// for evaluator inputs. It provides the boolean side of the EzPC-style
// baseline (Exp#6): secure ReLU over additively shared values, whose
// share↔circuit conversions are exactly the protocol-transition overhead
// the paper attributes EzPC's latency to.
package garble

import (
	"fmt"
)

// GateType enumerates supported gates. XOR and NOT are free under
// free-XOR garbling; AND costs a four-row table.
type GateType int

const (
	// XOR outputs A ⊕ B.
	XOR GateType = iota
	// AND outputs A ∧ B.
	AND
	// NOT outputs ¬A (B unused).
	NOT
)

// Gate is one boolean gate over wire indices.
type Gate struct {
	Type GateType
	A, B int
	Out  int
}

// Circuit is a boolean circuit with a two-party input split: wires
// [0,NGarbler) belong to the garbler, [NGarbler, NGarbler+NEval) to the
// evaluator.
type Circuit struct {
	NGarbler int
	NEval    int
	Gates    []Gate
	Outputs  []int
	nWires   int
}

// NWires returns the total wire count.
func (c *Circuit) NWires() int { return c.nWires }

// ANDCount returns the number of AND gates (the garbling cost driver).
func (c *Circuit) ANDCount() int {
	n := 0
	for _, g := range c.Gates {
		if g.Type == AND {
			n++
		}
	}
	return n
}

// Validate checks wire indices are well-formed and acyclic (gates in
// topological order by construction).
func (c *Circuit) Validate() error {
	if c.NGarbler < 0 || c.NEval < 0 || c.NGarbler+c.NEval == 0 {
		return fmt.Errorf("garble: circuit needs inputs (garbler %d, evaluator %d)", c.NGarbler, c.NEval)
	}
	defined := c.NGarbler + c.NEval
	for i, g := range c.Gates {
		if g.A < 0 || g.A >= defined {
			return fmt.Errorf("garble: gate %d reads undefined wire %d", i, g.A)
		}
		if g.Type != NOT && (g.B < 0 || g.B >= defined) {
			return fmt.Errorf("garble: gate %d reads undefined wire %d", i, g.B)
		}
		if g.Out != defined {
			return fmt.Errorf("garble: gate %d writes wire %d, want %d (topological order)", i, g.Out, defined)
		}
		defined++
	}
	for _, o := range c.Outputs {
		if o < 0 || o >= defined {
			return fmt.Errorf("garble: output wire %d undefined", o)
		}
	}
	return nil
}

// Builder incrementally constructs circuits in topological order.
type Builder struct {
	c Circuit
}

// NewBuilder allocates the two parties' input wires.
func NewBuilder(nGarbler, nEval int) *Builder {
	return &Builder{c: Circuit{NGarbler: nGarbler, NEval: nEval, nWires: nGarbler + nEval}}
}

// GarblerInput returns the wire index of the garbler's i-th input bit.
func (b *Builder) GarblerInput(i int) int { return i }

// EvalInput returns the wire index of the evaluator's i-th input bit.
func (b *Builder) EvalInput(i int) int { return b.c.NGarbler + i }

func (b *Builder) gate(t GateType, a, bw int) int {
	out := b.c.nWires
	b.c.nWires++
	b.c.Gates = append(b.c.Gates, Gate{Type: t, A: a, B: bw, Out: out})
	return out
}

// XOR adds an XOR gate.
func (b *Builder) XOR(a, bw int) int { return b.gate(XOR, a, bw) }

// AND adds an AND gate.
func (b *Builder) AND(a, bw int) int { return b.gate(AND, a, bw) }

// NOT adds a NOT gate.
func (b *Builder) NOT(a int) int { return b.gate(NOT, a, -1) }

// Output marks wires as circuit outputs (revealed to the evaluator).
func (b *Builder) Output(wires ...int) { b.c.Outputs = append(b.c.Outputs, wires...) }

// Build finalizes the circuit.
func (b *Builder) Build() (*Circuit, error) {
	c := b.c
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Add64 appends a 64-bit ripple-carry adder over two little-endian wire
// slices, returning the sum wires (the final carry is dropped: ring
// arithmetic mod 2^64). Per bit: sum = a⊕b⊕c; carry' = (a∧b)⊕(c∧(a⊕b)),
// two AND gates.
func (b *Builder) Add64(a, x []int) ([]int, error) {
	if len(a) != 64 || len(x) != 64 {
		return nil, fmt.Errorf("garble: Add64 needs 64-bit operands, got %d/%d", len(a), len(x))
	}
	sum := make([]int, 64)
	carry := -1
	for i := 0; i < 64; i++ {
		axb := b.XOR(a[i], x[i])
		if carry < 0 {
			sum[i] = axb
			if i < 63 {
				carry = b.AND(a[i], x[i])
			}
			continue
		}
		sum[i] = b.XOR(axb, carry)
		if i < 63 {
			ab := b.AND(a[i], x[i])
			cx := b.AND(carry, axb)
			carry = b.XOR(ab, cx)
		}
	}
	return sum, nil
}

// ReLUShares builds the EzPC-style secure ReLU circuit over additively
// shared 64-bit ring values:
//
//	garbler inputs:   x0 (its share, 64 bits), negR (−r, its fresh output
//	                  mask, 64 bits)
//	evaluator inputs: x1 (its share, 64 bits)
//	outputs:          y − r where y = ReLU(x0 + x1), revealed to the
//	                  evaluator as its new share (the garbler keeps r).
//
// Internally: s = x0 + x1; pos = ¬sign(s); y_i = pos ∧ s_i; out = y + negR.
func ReLUShares() (*Circuit, error) {
	b := NewBuilder(128, 64)
	x0 := make([]int, 64)
	negR := make([]int, 64)
	x1 := make([]int, 64)
	for i := 0; i < 64; i++ {
		x0[i] = b.GarblerInput(i)
		negR[i] = b.GarblerInput(64 + i)
		x1[i] = b.EvalInput(i)
	}
	s, err := b.Add64(x0, x1)
	if err != nil {
		return nil, err
	}
	pos := b.NOT(s[63])
	y := make([]int, 64)
	for i := 0; i < 64; i++ {
		y[i] = b.AND(pos, s[i])
	}
	out, err := b.Add64(y, negR)
	if err != nil {
		return nil, err
	}
	b.Output(out...)
	return b.Build()
}

// Compare64 builds a circuit outputting one bit: whether the sum of the
// two parties' 64-bit shares is negative (the MSB). Used alone it is the
// secure comparison primitive.
func Compare64() (*Circuit, error) {
	b := NewBuilder(64, 64)
	a := make([]int, 64)
	x := make([]int, 64)
	for i := 0; i < 64; i++ {
		a[i] = b.GarblerInput(i)
		x[i] = b.EvalInput(i)
	}
	s, err := b.Add64(a, x)
	if err != nil {
		return nil, err
	}
	b.Output(s[63])
	return b.Build()
}

// Bits64 decomposes a ring value into 64 little-endian bits.
func Bits64(v uint64) []bool {
	out := make([]bool, 64)
	for i := 0; i < 64; i++ {
		out[i] = (v>>uint(i))&1 == 1
	}
	return out
}

// FromBits64 reassembles a ring value from little-endian bits.
func FromBits64(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
