package garble

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// This file implements semi-honest IKNP oblivious-transfer extension:
// a small number (128) of base OTs — run over the Paillier OT in this
// package — extend to an arbitrary number m of label transfers using
// only symmetric operations. Real garbled-circuit deployments (including
// EzPC, the paper's measured baseline) rely on OT extension; without it
// the per-element ReLU conversions would be dominated by public-key
// operations and the baseline comparison would be meaningless.

// extK is the extension security parameter (number of base OTs).
const extK = 128

// prg expands a seed into nBytes pseudo-random bytes via SHA-256 in
// counter mode. Semi-honest setting; a production system would use AES.
func prg(seed Label, nBytes int) []byte {
	out := make([]byte, 0, nBytes+sha256.Size)
	var ctr [8]byte
	for len(out) < nBytes {
		binary.LittleEndian.PutUint64(ctr[:], uint64(len(out)))
		h := sha256.New()
		h.Write(seed[:])
		h.Write(ctr[:])
		out = h.Sum(out)
	}
	return out[:nBytes]
}

// hashIdx is the extension's correlation-robust hash H(j, q).
func hashIdx(j int, q []byte) Label {
	h := sha256.New()
	var jb [8]byte
	binary.LittleEndian.PutUint64(jb[:], uint64(j))
	h.Write(jb[:])
	h.Write(q)
	var out Label
	copy(out[:], h.Sum(nil))
	return out
}

func getBit(bs []byte, i int) bool { return bs[i/8]>>(uint(i)%8)&1 == 1 }

func setBit(bs []byte, i int, v bool) {
	if v {
		bs[i/8] |= 1 << (uint(i) % 8)
	}
}

// ExtSender is the extension sender: it can transfer any of its m label
// pairs with symmetric crypto only.
type ExtSender struct {
	m    int
	s    []bool   // k secret choice bits
	cols [][]byte // k columns of m bits each: Q
}

// ExtReceiver is the extension receiver with its chosen labels' keys.
type ExtReceiver struct {
	m      int
	choice []bool
	cols   [][]byte // k columns of m bits each: T
}

// NewOTExtension runs the complete IKNP setup for m transfers with the
// receiver's choice bits fixed up front. The base OTs run over the
// provided Paillier OT context with the roles reversed (the extension
// sender acts as base-OT receiver). It returns both endpoint states and
// the number of base OTs consumed.
func NewOTExtension(ot *OT, m int, choice []bool) (*ExtSender, *ExtReceiver, int, error) {
	if m <= 0 {
		return nil, nil, 0, fmt.Errorf("garble: extension needs m > 0, got %d", m)
	}
	if len(choice) != m {
		return nil, nil, 0, fmt.Errorf("garble: %d choice bits for m=%d", len(choice), m)
	}
	nBytes := (m + 7) / 8
	// Receiver-side secrets: k seed pairs.
	type seedPair struct{ k0, k1 Label }
	seeds := make([]seedPair, extK)
	for i := range seeds {
		if _, err := rand.Read(seeds[i].k0[:]); err != nil {
			return nil, nil, 0, err
		}
		if _, err := rand.Read(seeds[i].k1[:]); err != nil {
			return nil, nil, 0, err
		}
	}
	// Sender-side secret: k choice bits s.
	var sBytes [extK / 8]byte
	if _, err := rand.Read(sBytes[:]); err != nil {
		return nil, nil, 0, err
	}
	s := make([]bool, extK)
	for i := range s {
		s[i] = getBit(sBytes[:], i)
	}

	// choice bitset r
	r := make([]byte, nBytes)
	for i, b := range choice {
		setBit(r, i, b)
	}

	recv := &ExtReceiver{m: m, choice: append([]bool(nil), choice...), cols: make([][]byte, extK)}
	send := &ExtSender{m: m, s: s, cols: make([][]byte, extK)}

	baseOTs := 0
	for i := 0; i < extK; i++ {
		// t_i = PRG(k0_i); u_i = t_i ⊕ PRG(k1_i) ⊕ r sent to sender.
		t := prg(seeds[i].k0, nBytes)
		p1 := prg(seeds[i].k1, nBytes)
		u := make([]byte, nBytes)
		for b := range u {
			u[b] = t[b] ^ p1[b] ^ r[b]
		}
		recv.cols[i] = t

		// Base OT: extension sender receives k_{s_i} obliviously.
		chooseMsg, err := ot.Choose(s[i])
		if err != nil {
			return nil, nil, 0, err
		}
		reply, err := Transfer(ot.PublicKey(), chooseMsg, seeds[i].k0, seeds[i].k1)
		if err != nil {
			return nil, nil, 0, err
		}
		got, err := ot.Receive(reply)
		if err != nil {
			return nil, nil, 0, err
		}
		baseOTs++
		// q_i = PRG(k_{s_i}) ⊕ s_i·u
		q := prg(got, nBytes)
		if s[i] {
			for b := range q {
				q[b] ^= u[b]
			}
		}
		send.cols[i] = q
	}
	return send, recv, baseOTs, nil
}

// row extracts row j (k bits) of a column-major bit matrix as k/8 bytes.
func row(cols [][]byte, j int) []byte {
	out := make([]byte, extK/8)
	for i := 0; i < extK; i++ {
		if getBit(cols[i], j) {
			out[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return out
}

// Transfer produces the sender's masked pair for index j.
func (s *ExtSender) Transfer(j int, m0, m1 Label) (y0, y1 Label, err error) {
	if j < 0 || j >= s.m {
		return y0, y1, fmt.Errorf("garble: extension index %d out of range [0,%d)", j, s.m)
	}
	qj := row(s.cols, j)
	qjs := make([]byte, len(qj))
	for i := 0; i < extK; i++ {
		v := getBit(qj, i) != s.s[i] // q_j ⊕ s
		setBit(qjs, i, v)
	}
	h0 := hashIdx(j, qj)
	h1 := hashIdx(j, qjs)
	y0 = m0.xor(h0)
	y1 = m1.xor(h1)
	return y0, y1, nil
}

// Receive unmasks the label matching the receiver's j-th choice bit.
func (r *ExtReceiver) Receive(j int, y0, y1 Label) (Label, error) {
	if j < 0 || j >= r.m {
		return Label{}, fmt.Errorf("garble: extension index %d out of range [0,%d)", j, r.m)
	}
	tj := row(r.cols, j)
	h := hashIdx(j, tj)
	if r.choice[j] {
		return y1.xor(h), nil
	}
	return y0.xor(h), nil
}

// TransferLabelsExt runs the OT phase of a garbled-circuit execution
// through an extension: all evaluator input bits transfer with symmetric
// crypto. Returns labels and the count of extended transfers.
func TransferLabelsExt(g *Garbling, ot *OT, bits []bool) ([]Label, int, error) {
	if len(bits) != g.circuit.NEval {
		return nil, 0, fmt.Errorf("garble: %d evaluator bits, circuit wants %d", len(bits), g.circuit.NEval)
	}
	send, recv, _, err := NewOTExtension(ot, len(bits), bits)
	if err != nil {
		return nil, 0, err
	}
	labels := make([]Label, len(bits))
	for i := range bits {
		m0, m1, err := g.EvalLabelPair(i)
		if err != nil {
			return nil, i, err
		}
		y0, y1, err := send.Transfer(i, m0, m1)
		if err != nil {
			return nil, i, err
		}
		labels[i], err = recv.Receive(i, y0, y1)
		if err != nil {
			return nil, i, err
		}
	}
	return labels, len(bits), nil
}
