package garble

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// hgEval garbles with half-gates and evaluates with directly handed
// labels.
func hgEval(t *testing.T, c *Circuit, gBits, eBits []bool) []bool {
	t.Helper()
	g, err := GarbleHG(c)
	if err != nil {
		t.Fatal(err)
	}
	gl, err := g.GarblerLabels(gBits)
	if err != nil {
		t.Fatal(err)
	}
	el := make([]Label, len(eBits))
	for i, b := range eBits {
		zero, one, err := g.EvalLabelPair(i)
		if err != nil {
			t.Fatal(err)
		}
		if b {
			el[i] = one
		} else {
			el[i] = zero
		}
	}
	out, err := EvaluateHG(c, g.Public(), gl, el)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHalfGatesTruthTables(t *testing.T) {
	b := NewBuilder(1, 1)
	andW := b.AND(0, 1)
	xorW := b.XOR(0, 1)
	notW := b.NOT(andW)
	b.Output(andW, xorW, notW)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, ga := range []bool{false, true} {
		for _, ea := range []bool{false, true} {
			got := hgEval(t, c, []bool{ga}, []bool{ea})
			if got[0] != (ga && ea) {
				t.Errorf("AND(%v,%v) = %v", ga, ea, got[0])
			}
			if got[1] != (ga != ea) {
				t.Errorf("XOR(%v,%v) = %v", ga, ea, got[1])
			}
			if got[2] != !(ga && ea) {
				t.Errorf("NAND(%v,%v) = %v", ga, ea, got[2])
			}
		}
	}
}

func TestHalfGatesTwoRowsPerAND(t *testing.T) {
	c, err := ReLUShares()
	if err != nil {
		t.Fatal(err)
	}
	g, err := GarbleHG(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Public().Tables) != c.ANDCount() {
		t.Errorf("%d tables for %d AND gates", len(g.Public().Tables), c.ANDCount())
	}
	// Bytes on the wire: half-gates 2 labels/AND vs point-and-permute 4.
	hgBytes := len(g.Public().Tables) * 2 * LabelSize
	ppBytes := c.ANDCount() * 4 * LabelSize
	if hgBytes*2 != ppBytes {
		t.Errorf("table bytes %d, point-and-permute %d — expected exactly half", hgBytes, ppBytes)
	}
}

// TestHalfGatesReLU runs the EzPC ReLU conversion under half-gates.
func TestHalfGatesReLU(t *testing.T) {
	c, err := ReLUShares()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for _, x := range []int64{98765, -98765, 0, 1, -1} {
		x0 := rng.Uint64()
		x1 := uint64(x) - x0
		r := rng.Uint64()
		out := hgEval(t, c, append(Bits64(x0), Bits64(-r)...), Bits64(x1))
		y := int64(FromBits64(out) + r)
		want := x
		if want < 0 {
			want = 0
		}
		if y != want {
			t.Errorf("half-gates ReLU(%d) = %d", x, y)
		}
	}
}

// Property: half-gates and point-and-permute agree with plain evaluation
// on random circuits.
func TestHalfGatesMatchesPlainProperty(t *testing.T) {
	f := func(seed int64, gRaw, eRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(4, 4)
		wires := []int{0, 1, 2, 3, 4, 5, 6, 7}
		for i := 0; i < 14; i++ {
			a := wires[rng.Intn(len(wires))]
			x := wires[rng.Intn(len(wires))]
			var out int
			switch rng.Intn(3) {
			case 0:
				out = b.XOR(a, x)
			case 1:
				out = b.AND(a, x)
			default:
				out = b.NOT(a)
			}
			wires = append(wires, out)
		}
		b.Output(wires[len(wires)-4:]...)
		c, err := b.Build()
		if err != nil {
			return false
		}
		gBits := make([]bool, 4)
		eBits := make([]bool, 4)
		for i := 0; i < 4; i++ {
			gBits[i] = gRaw>>uint(i)&1 == 1
			eBits[i] = eRaw>>uint(i)&1 == 1
		}
		g, err := GarbleHG(c)
		if err != nil {
			return false
		}
		gl, err := g.GarblerLabels(gBits)
		if err != nil {
			return false
		}
		el := make([]Label, 4)
		for i, bit := range eBits {
			z, o, err := g.EvalLabelPair(i)
			if err != nil {
				return false
			}
			if bit {
				el[i] = o
			} else {
				el[i] = z
			}
		}
		got, err := EvaluateHG(c, g.Public(), gl, el)
		if err != nil {
			return false
		}
		want := evalPlain(c, gBits, eBits)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHalfGatesValidation(t *testing.T) {
	bad := &Circuit{NGarbler: 0, NEval: 0}
	if _, err := GarbleHG(bad); err == nil {
		t.Error("inputless circuit garbled")
	}
	b := NewBuilder(1, 1)
	b.Output(b.AND(0, 1))
	c, _ := b.Build()
	g, err := GarbleHG(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.GarblerLabels([]bool{true, false}); err == nil {
		t.Error("wrong garbler bit count accepted")
	}
	if _, _, err := g.EvalLabelPair(5); err == nil {
		t.Error("out-of-range eval input accepted")
	}
	if _, err := EvaluateHG(c, g.Public(), nil, nil); err == nil {
		t.Error("missing labels accepted")
	}
}
