package ppstream

// Ablation benchmarks for the design choices DESIGN.md calls out:
// CRT-accelerated decryption, the precomputed blinding pool, merged vs
// per-layer stage encapsulation, and the partitioning executor's
// overhead. Run with:
//
//	go test -bench=Ablation -benchmem

import (
	"crypto/rand"
	mathrand "math/rand"
	"testing"

	"ppstream/internal/garble"
	"ppstream/internal/nn"
	"ppstream/internal/paillier"
	"ppstream/internal/partition"
	"ppstream/internal/qnn"
	"ppstream/internal/simulate"
	"ppstream/internal/tensor"
)

// --- CRT decryption (Section V: GMP-style modular arithmetic) -------------

func BenchmarkAblationDecryptCRT(b *testing.B) {
	k := benchPaillierKey(b)
	ct, err := k.PublicKey.EncryptInt64(rand.Reader, 987654321)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDecryptNoCRT(b *testing.B) {
	k := benchPaillierKey(b)
	ct, err := k.PublicKey.EncryptInt64(rand.Reader, 987654321)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.DecryptNoCRT(ct); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Blinding pool (off-critical-path r^n precomputation) -----------------

func BenchmarkAblationEncryptFresh(b *testing.B) {
	k := benchPaillierKey(b)
	for i := 0; i < b.N; i++ {
		if _, err := k.PublicKey.EncryptInt64(rand.Reader, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEncryptPooled(b *testing.B) {
	k := benchPaillierKey(b)
	pool := paillier.NewPool(&k.PublicKey, rand.Reader, 256, 2)
	defer pool.Close()
	// Let the pool pre-fill so the benchmark measures the intended
	// steady state (blinding factors produced off the critical path).
	warm := make([]*paillier.Ciphertext, 0, 64)
	for i := 0; i < 64; i++ {
		ct, err := pool.EncryptInt64(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		warm = append(warm, ct)
	}
	_ = warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.EncryptInt64(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Stage encapsulation (Section IV-B): merged vs per-layer stages -------
//
// The paper rejects one-stage-per-primitive-layer because of the
// serialization overhead between stages. The simulation compares the
// same profiled costs encapsulated both ways: merged stages vs one stage
// per primitive layer with a per-hop serialization charge.

func BenchmarkAblationMergedStages(b *testing.B) {
	stages := []simulate.Stage{
		{Name: "lin0", Base: 0.10, Threads: 4, CommElems: 800},
		{Name: "non0", Base: 0.02, Threads: 4},
		{Name: "lin1", Base: 0.06, Threads: 4, CommElems: 400},
		{Name: "non1", Base: 0.01, Threads: 4},
	}
	per := simulate.PerElementTransferCost(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Pipeline(stages, 16, per); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPerLayerStages(b *testing.B) {
	// The same work split into twice the stages, each hop re-serializing
	// the full tensor (the overhead Section IV-B's merge avoids).
	stages := []simulate.Stage{
		{Name: "conv", Base: 0.06, Threads: 4, CommElems: 800},
		{Name: "bn", Base: 0.04, Threads: 4, CommElems: 800},
		{Name: "non0", Base: 0.02, Threads: 4, CommElems: 800},
		{Name: "fc", Base: 0.04, Threads: 4, CommElems: 400},
		{Name: "fc2", Base: 0.02, Threads: 4, CommElems: 400},
		{Name: "non1", Base: 0.01, Threads: 4, CommElems: 400},
	}
	per := simulate.PerElementTransferCost(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Pipeline(stages, 16, per); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Partitioning executor overhead ----------------------------------------
//
// The shared-memory fast path (qnn.ApplyStage) vs the partitioning
// executor that materializes per-thread input views (partition.Execute):
// the cost of physically modelling the communication.

func ablationConvOp(b *testing.B) (qnn.ElementOp, *paillier.CipherTensor, *paillier.PrivateKey) {
	b.Helper()
	k := benchPaillierKey(b)
	r := mathrand.New(mathrand.NewSource(9))
	p := tensor.ConvParams{InC: 1, InH: 8, InW: 8, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv, err := nn.NewConv("c", p, r)
	if err != nil {
		b.Fatal(err)
	}
	op, err := qnn.Quantize(conv, 100)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Zeros(1, 8, 8)
	for i := range x.Data() {
		x.Data()[i] = r.Float64() - 0.5
	}
	ct, err := paillier.EncryptTensor(&k.PublicKey, rand.Reader, qnn.ScaleInput(x, 100), 2)
	if err != nil {
		b.Fatal(err)
	}
	return op.(qnn.ElementOp), ct, k
}

func BenchmarkAblationSharedMemoryConv(b *testing.B) {
	op, ct, k := ablationConvOp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := op.Apply(paillier.NewEvaluator(&k.PublicKey), ct, 1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPartitionedConv(b *testing.B) {
	op, ct, k := ablationConvOp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := partition.Execute(paillier.NewEvaluator(&k.PublicKey), op, ct, 1, 2, true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Plaintext packing (encryption amortization) ---------------------------
//
// Packing multiple plaintext slots per ciphertext divides the number of
// public-key encryptions for the data provider's dominant cost
// (Fig. 1: encryption is the slowest primitive).

func BenchmarkAblationEncryptUnpacked(b *testing.B) {
	k := benchPaillierKey(b)
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(i * 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vals {
			if _, err := k.PublicKey.EncryptInt64(rand.Reader, v); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblationEncryptPacked(b *testing.B) {
	k := benchPaillierKey(b)
	packing, err := paillier.NewPacking(&k.PublicKey, 24, 8)
	if err != nil {
		b.Fatal(err)
	}
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = int64(i * 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := packing.EncryptPacked(&k.PublicKey, rand.Reader, vals); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Garbling scheme: point-and-permute vs half-gates -----------------------
//
// Half-gates halves the garbled tables (2 vs 4 rows per AND), the
// dominant wire volume of the EzPC-style baseline's non-linear layers.

func BenchmarkAblationGarblePointPermute(b *testing.B) {
	c, err := garble.ReLUShares()
	if err != nil {
		b.Fatal(err)
	}
	r := mathrand.New(mathrand.NewSource(41))
	x0, x1, mask := r.Uint64(), r.Uint64(), r.Uint64()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := garble.Garble(c)
		if err != nil {
			b.Fatal(err)
		}
		gl, err := g.GarblerLabels(append(garble.Bits64(x0), garble.Bits64(-mask)...))
		if err != nil {
			b.Fatal(err)
		}
		el := make([]garble.Label, 64)
		for j := 0; j < 64; j++ {
			z, o, err := g.EvalLabelPair(j)
			if err != nil {
				b.Fatal(err)
			}
			if garble.Bits64(x1)[j] {
				el[j] = o
			} else {
				el[j] = z
			}
		}
		if _, err := garble.Evaluate(c, g.Public(), gl, el); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGarbleHalfGates(b *testing.B) {
	c, err := garble.ReLUShares()
	if err != nil {
		b.Fatal(err)
	}
	r := mathrand.New(mathrand.NewSource(41))
	x0, x1, mask := r.Uint64(), r.Uint64(), r.Uint64()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := garble.GarbleHG(c)
		if err != nil {
			b.Fatal(err)
		}
		gl, err := g.GarblerLabels(append(garble.Bits64(x0), garble.Bits64(-mask)...))
		if err != nil {
			b.Fatal(err)
		}
		el := make([]garble.Label, 64)
		for j := 0; j < 64; j++ {
			z, o, err := g.EvalLabelPair(j)
			if err != nil {
				b.Fatal(err)
			}
			if garble.Bits64(x1)[j] {
				el[j] = o
			} else {
				el[j] = z
			}
		}
		if _, err := garble.EvaluateHG(c, g.Public(), gl, el); err != nil {
			b.Fatal(err)
		}
	}
}
