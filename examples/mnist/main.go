// MNIST: runs the paper's MNIST-2 model (1Conv+2FC) through the full
// PP-Stream machinery and shows the system-level features at work: the
// merged primitive layers, the profiled stage times, the ILP allocation
// plan versus the even baseline, the tensor-partitioning communication
// savings, and the modelled deployment latency.
//
//	go run ./examples/mnist
package main

import (
	"fmt"
	"log"

	"ppstream"
	"ppstream/internal/alloc"
	"ppstream/internal/nn"
)

func main() {
	spec, err := ppstream.ModelByName("MNIST-2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training MNIST-2 (1Conv+2FC) on synthetic digits…")
	net, ds, err := ppstream.PrepareModel(spec)
	if err != nil {
		log.Fatal(err)
	}
	acc, _ := net.Accuracy(ds.TestX, ds.TestY)
	fmt.Printf("test accuracy: %.1f%%\n\n", acc*100)

	// Show the operation encapsulation (Section IV-B).
	merged, err := nn.Merge(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("merged primitive layers (stage per row):")
	for _, m := range merged {
		fmt.Printf("  %-40s in %-12v out %v\n", m.Name(), m.InShape, m.OutShape)
	}

	key, err := ppstream.GenerateKey(512)
	if err != nil {
		log.Fatal(err)
	}
	sel, err := ppstream.SelectScalingFactor(net, ds.TrainX[:64], ds.TrainY[:64])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscaling factor: 10^%d\n", sel.Exponent)

	eng, err := ppstream.NewEngine(net, key, ppstream.Options{
		Factor:          sel.Factor,
		Topology:        ppstream.Topology{ModelServers: spec.ModelServers, DataServers: spec.DataServers, CoresPerServer: 6},
		LoadBalance:     true,
		TensorPartition: true,
		ProfileSample:   ds.TestX[0],
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// The load-balanced plan vs the even split (Exp#3's comparison).
	even, err := alloc.Even(eng.Layers, eng.Servers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nload-balanced resource allocation (Section IV-C):")
	fmt.Printf("  %-40s %10s  %8s  %8s\n", "stage", "T_i", "ILP y_i", "even y_i")
	for i, l := range eng.Layers {
		fmt.Printf("  %-40s %9.1fms  %8d  %8d\n", l.Name, l.Time*1000, eng.Plan.Threads[i], even.Threads[i])
	}
	fmt.Printf("  imbalance objective: ILP %.4f vs even %.4f (exact=%v)\n",
		eng.Plan.Objective, even.Objective, eng.Plan.Exact)

	// Tensor partitioning communication volumes (Section IV-D).
	fmt.Println("\ntensor partitioning (Section IV-D), per request:")
	li := 0
	for i, m := range eng.Protocol.Merged {
		if m.Kind != nn.Linear {
			continue
		}
		with, without, err := eng.Protocol.Model.StageComm(li, eng.Plan.Threads[i])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-40s %9d elems with partitioning, %9d without (%.1f%% saved)\n",
			m.Name(), with, without, 100*(1-float64(with)/float64(without)))
		li++
	}

	// One real private inference + the modelled streaming deployment.
	out, latency, err := eng.InferOne(1, ds.TestX[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprivate inference: digit %d (true %d), sequential latency %v\n",
		ppstream.ArgMax(out), ds.TestY[0], latency)
	sim, err := eng.Simulate(16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modelled %d-core streaming deployment: %v/request steady-state (first %v, bottleneck %v)\n",
		(spec.ModelServers+spec.DataServers)*6, sim.Effective, sim.First, sim.Bottleneck)
}
