// Medical: the paper's motivating healthcare scenario. A hospital (data
// provider) holds patient records; a diagnostics vendor (model provider)
// holds a proprietary heart-disease model. Neither learns the other's
// secrets: records travel encrypted, model weights never leave the
// vendor, and the tensors the hospital decrypts for the non-linear steps
// arrive position-permuted.
//
//	go run ./examples/medical
package main

import (
	"context"
	"fmt"
	"log"

	"ppstream"
)

func main() {
	// Train the vendor's model on the synthetic Heart dataset
	// (Table III row: 13 clinical features, binary diagnosis).
	spec, err := ppstream.ModelByName("Heart")
	if err != nil {
		log.Fatal(err)
	}
	net, ds, err := ppstream.PrepareModel(spec)
	if err != nil {
		log.Fatal(err)
	}
	testAcc, _ := net.Accuracy(ds.TestX, ds.TestY)
	fmt.Printf("vendor model: %s, test accuracy %.1f%%\n", spec.Arch, testAcc*100)

	// The hospital's key pair. The vendor only ever receives the public
	// key.
	key, err := ppstream.GenerateKey(512)
	if err != nil {
		log.Fatal(err)
	}

	sel, err := ppstream.SelectScalingFactor(net, ds.TrainX, ds.TrainY)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := ppstream.NewEngine(net, key, ppstream.Options{
		Factor: sel.Factor,
		Topology: ppstream.Topology{
			ModelServers:   spec.ModelServers,
			DataServers:    spec.DataServers,
			CoresPerServer: 4,
		},
		LoadBalance:   true,
		ProfileSample: ds.TestX[0],
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// Stream a batch of patient records through the pipeline.
	patients := ds.TestX[:10]
	results, stats, err := eng.InferStream(context.Background(), patients)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, out := range results {
		pred := ppstream.ArgMax(out)
		if pred == ds.TestY[i] {
			correct++
		}
		diagnosis := "healthy"
		if pred == 1 {
			diagnosis = "heart disease"
		}
		fmt.Printf("patient %2d: %-13s (P=%.3f)\n", i+1, diagnosis, out.Data()[pred])
	}
	fmt.Printf("\nbatch of %d: %d/%d match plain inference labels\n", stats.Requests, correct, len(patients))
	fmt.Printf("first-record latency %v, steady-state %v/record\n", stats.FirstLatency, stats.EffectiveLatency)

	// How much do the permuted tensors leak? (Exp#5's metric.)
	sample := ds.TestX[0]
	dcor, err := ppstream.MeasureLeakage(sample, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("obfuscation leakage on a %d-feature record: distance correlation %.3f (1 = no protection)\n",
		sample.Size(), dcor)
}
