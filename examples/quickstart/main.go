// Quickstart: build a small model, train it on synthetic data, and run
// privacy-preserving inference through the PP-Stream engine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ppstream"
	"ppstream/internal/nn"
)

func main() {
	// 1. A small classifier: 2 features -> 2 classes. PP-Stream requires
	// the usual shape: linear layers + element-wise activations + a
	// final SoftMax.
	rng := rand.New(rand.NewSource(1))
	net, err := nn.NewNetwork("quickstart", ppstream.Shape{2},
		nn.NewFC("fc1", 2, 8, rng),
		nn.NewReLU("relu"),
		nn.NewFC("fc2", 8, 2, rng),
		nn.NewSoftMax("softmax"),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train on two Gaussian blobs.
	var xs []*ppstream.Tensor
	var ys []int
	for i := 0; i < 200; i++ {
		c := i % 2
		center := float64(c*4 - 2)
		x := ppstream.NewTensor(2)
		x.Data()[0] = center + rng.NormFloat64()
		x.Data()[1] = center + rng.NormFloat64()
		xs, ys = append(xs, x), append(ys, c)
	}
	cfg := ppstream.DefaultTrainConfig()
	cfg.Epochs = 30
	if err := ppstream.Train(net, xs, ys, cfg); err != nil {
		log.Fatal(err)
	}
	acc, _ := net.Accuracy(xs, ys)
	fmt.Printf("trained: %.1f%% training accuracy\n", acc*100)

	// 3. The data provider generates its Paillier key pair. 512 bits
	// keeps the demo fast; production follows the paper with 2048.
	key, err := ppstream.GenerateKey(512)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Parameter scaling (Exp#1): pick the factor that keeps accuracy.
	sel, err := ppstream.SelectScalingFactor(net, xs, ys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scaling factor: 10^%d (accuracy %.2f%% vs %.2f%%)\n",
		sel.Exponent, sel.ScaledAccuracy*100, sel.OriginalAccuracy*100)

	// 5. Build the engine: profile stages, solve the load-balanced
	// allocation, plan tensor partitioning.
	eng, err := ppstream.NewEngine(net, key, ppstream.Options{
		Factor:          sel.Factor,
		Topology:        ppstream.Topology{ModelServers: 1, DataServers: 1, CoresPerServer: 2},
		LoadBalance:     true,
		TensorPartition: true,
		ProfileSample:   xs[0],
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// 6. Privacy-preserving inference: the model provider never sees the
	// input, the data provider never sees the weights.
	for i := 0; i < 3; i++ {
		x := xs[i*7]
		out, latency, err := eng.InferOne(uint64(i), x)
		if err != nil {
			log.Fatal(err)
		}
		plain, _ := net.Forward(x)
		fmt.Printf("sample %d: private class %d (plain %d), latency %v, P(class)=%.3f\n",
			i, ppstream.ArgMax(out), ppstream.ArgMax(plain), latency, out.Data()[ppstream.ArgMax(out)])
	}
}
