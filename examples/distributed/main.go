// Distributed: runs the two providers as separate services connected by
// real TCP sockets on loopback, exchanging gob-encoded wire envelopes —
// the deployment shape of the paper's testbed. The model-provider
// service owns the weights and the obfuscation state; the data-provider
// client owns the private key and the raw inputs. Only ciphertexts cross
// the wire.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"ppstream"
	"ppstream/internal/nn"
	"ppstream/internal/protocol"
	"ppstream/internal/stream"
)

func main() {
	protocol.RegisterWire()

	// Shared setup: in a real deployment the parties agree on the model
	// architecture and scaling factor; weights stay with the vendor.
	rng := rand.New(rand.NewSource(7))
	net, err := nn.NewNetwork("distributed-demo", ppstream.Shape{8},
		nn.NewFC("fc1", 8, 12, rng),
		nn.NewReLU("relu1"),
		nn.NewFC("fc2", 12, 4, rng),
		nn.NewSoftMax("softmax"),
	)
	if err != nil {
		log.Fatal(err)
	}
	key, err := ppstream.GenerateKey(512)
	if err != nil {
		log.Fatal(err)
	}
	const factor = 10000
	proto, err := ppstream.BuildProtocol(net, key, factor, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Wire topology: client -> model server (requests), model server ->
	// client (responses). Each round trips the same two sockets.
	toModel, modelAddr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	toData, dataAddr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model provider listening on %s, data provider on %s\n", modelAddr, dataAddr)

	ctx := context.Background()
	rounds := proto.Rounds()

	// ---- Model provider service (separate goroutine = separate box).
	go func() {
		replies, err := stream.DialEdge(dataAddr)
		if err != nil {
			log.Fatalf("model provider: %v", err)
		}
		pk := proto.Model.PublicKey()
		for {
			msg, err := toModel.Recv(ctx)
			if err != nil {
				return // client closed
			}
			w, ok := msg.Payload.(*protocol.WireEnvelope)
			if !ok {
				log.Fatalf("model provider: unexpected payload %T", msg.Payload)
			}
			env, err := protocol.FromWire(w, pk)
			if err != nil {
				log.Fatalf("model provider: malformed frame: %v", err)
			}
			round := int(msg.Seq) // client tags the round in Seq
			out, err := proto.Model.ProcessLinear(round, env)
			if err != nil {
				log.Fatalf("model provider: round %d: %v", round, err)
			}
			reply, err := protocol.ToWire(out)
			if err != nil {
				log.Fatalf("model provider: %v", err)
			}
			if err := replies.Send(ctx, &stream.Message{Seq: msg.Seq, Payload: reply}); err != nil {
				log.Fatalf("model provider: send: %v", err)
			}
		}
	}()

	// ---- Data provider client.
	requests, err := stream.DialEdge(modelAddr)
	if err != nil {
		log.Fatal(err)
	}

	x := ppstream.NewTensor(8)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	plain, _ := net.Forward(x)

	start := time.Now()
	env, err := proto.Data.Encrypt(1, x)
	if err != nil {
		log.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		// Send the encrypted tensor to the model provider over TCP.
		w, err := protocol.ToWire(env)
		if err != nil {
			log.Fatal(err)
		}
		if err := requests.Send(ctx, &stream.Message{Seq: uint64(r), Payload: w}); err != nil {
			log.Fatal(err)
		}
		// Receive the (obfuscated) linear-stage result.
		msg, err := toData.Recv(ctx)
		if err != nil {
			log.Fatal(err)
		}
		reply, ok := msg.Payload.(*protocol.WireEnvelope)
		if !ok {
			log.Fatalf("data provider: unexpected payload %T", msg.Payload)
		}
		env, err = protocol.FromWire(reply, proto.Model.PublicKey())
		if err != nil {
			log.Fatal(err)
		}
		// Decrypt, run the non-linear stage, re-encrypt (or finish).
		env, err = proto.Data.ProcessNonLinear(r, env)
		if err != nil {
			log.Fatal(err)
		}
	}
	requests.CloseSend()
	latency := time.Since(start)

	if env.Result == nil {
		log.Fatal("protocol ended without a result")
	}
	fmt.Printf("distributed private inference over TCP: class %d (plain reference %d)\n",
		ppstream.ArgMax(env.Result), ppstream.ArgMax(plain))
	fmt.Printf("end-to-end latency across %d rounds: %v\n", rounds, latency)
	fmt.Printf("output: %.4f vs plain %.4f\n", env.Result.Data(), plain.Data())
}
