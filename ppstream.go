// Package ppstream is the public API of the PP-Stream reproduction: a
// distributed stream processing system for high-performance
// privacy-preserving neural network inference (Liu et al., ICDE 2024).
//
// The model provider evaluates all linear layers homomorphically over
// Paillier ciphertexts; the data provider evaluates non-linear layers on
// plaintext values whose positions the model provider permuted
// (obfuscation). The alternating stages run as a multi-threaded,
// pipelined stream over inference requests, with ILP-based load-balanced
// resource allocation and tensor partitioning.
//
// Quick start:
//
//	key, _ := ppstream.GenerateKey(512)
//	factor, _ := ppstream.SelectScalingFactor(net, trainX, trainY)
//	eng, _ := ppstream.NewEngine(net, key, ppstream.Options{
//		Factor:      factor.Factor,
//		Topology:    ppstream.Topology{ModelServers: 2, DataServers: 1, CoresPerServer: 4},
//		LoadBalance: true,
//	})
//	defer eng.Close()
//	out, latency, _ := eng.InferOne(1, input)
//
// See examples/ for runnable scenarios and cmd/ppbench for the full
// reproduction of the paper's evaluation.
package ppstream

import (
	"crypto/rand"

	"ppstream/internal/alloc"
	"ppstream/internal/core"
	"ppstream/internal/dataset"
	"ppstream/internal/leakage"
	"ppstream/internal/models"
	"ppstream/internal/nn"
	"ppstream/internal/paillier"
	"ppstream/internal/protocol"
	"ppstream/internal/scaling"
	"ppstream/internal/tensor"
)

// Re-exported core types. The internal packages hold the implementation;
// this facade is the supported surface.
type (
	// Engine is a ready-to-run PP-Stream deployment for one model.
	Engine = core.Engine
	// Options configures engine construction.
	Options = core.Options
	// Topology describes the server deployment (model vs data provider
	// servers and cores per server).
	Topology = core.Topology
	// StreamStats summarizes a streaming inference run.
	StreamStats = core.StreamStats

	// Network is a neural network model.
	Network = nn.Network
	// Layer is one network layer.
	Layer = nn.Layer
	// TrainConfig controls the built-in SGD trainer.
	TrainConfig = nn.TrainConfig

	// Tensor is a dense float64 tensor.
	Tensor = tensor.Dense
	// Shape is a tensor shape.
	Shape = tensor.Shape

	// PrivateKey is the data provider's Paillier key pair.
	PrivateKey = paillier.PrivateKey
	// PublicKey is the model provider's encryption key.
	PublicKey = paillier.PublicKey

	// ScalingResult reports the outcome of scaling-factor selection.
	ScalingResult = scaling.Result

	// ModelSpec identifies one of the paper's Table III dataset/model
	// pairs.
	ModelSpec = models.Spec
	// Dataset is a labelled train/test split.
	Dataset = dataset.Dataset

	// AllocPlan is a load-balanced resource allocation.
	AllocPlan = alloc.Plan

	// Protocol is the two-party hybrid privacy-preserving workflow.
	Protocol = protocol.Protocol
)

// RecommendedKeyBits is the paper's production key size (2048). Tests
// and interactive experiments use smaller keys for speed.
const RecommendedKeyBits = paillier.RecommendedKeyBits

// GenerateKey creates the data provider's Paillier key pair.
func GenerateKey(bits int) (*PrivateKey, error) {
	return paillier.GenerateKey(rand.Reader, bits)
}

// NewEngine builds a PP-Stream engine: protocol construction, offline
// profiling, load-balanced resource allocation, and stage planning.
func NewEngine(net *Network, key *PrivateKey, opts Options) (*Engine, error) {
	return core.NewEngine(net, key, opts)
}

// SelectScalingFactor runs the paper's parameter-scaling selection
// (Section IV-A) on a training subset.
func SelectScalingFactor(net *Network, xs []*Tensor, ys []int) (*ScalingResult, error) {
	return scaling.SelectFactor(net, xs, ys, 0)
}

// BuildProtocol constructs the two-party protocol directly (without the
// streaming engine), e.g. for custom deployments.
func BuildProtocol(net *Network, key *PrivateKey, factor int64, workers int) (*Protocol, error) {
	return protocol.Build(net, key, protocol.Config{Factor: factor, Workers: workers})
}

// Train fits a network with the built-in SGD trainer.
func Train(net *Network, xs []*Tensor, ys []int, cfg TrainConfig) error {
	return nn.Train(net, xs, ys, cfg)
}

// DefaultTrainConfig returns trainer defaults suited to the synthetic
// datasets.
func DefaultTrainConfig() TrainConfig { return nn.DefaultTrainConfig() }

// SaveModel / LoadModel persist networks in gob format.
func SaveModel(net *Network, path string) error { return nn.SaveFile(net, path) }

// LoadModel reads a network written by SaveModel.
func LoadModel(path string) (*Network, error) { return nn.LoadFile(path) }

// Models returns the paper's nine Table III model specs.
func Models() []ModelSpec { return models.All() }

// ModelByName returns one Table III spec.
func ModelByName(name string) (ModelSpec, error) { return models.ByName(name) }

// PrepareModel builds, trains, and calibrates a Table III model on its
// synthetic dataset.
func PrepareModel(spec ModelSpec) (*Network, *Dataset, error) { return models.Prepare(spec) }

// MeasureLeakage returns the mean distance correlation between a tensor
// and its obfuscated form over the given number of fresh permutations
// (the paper's Exp#5 metric).
func MeasureLeakage(t *Tensor, trials int) (float64, error) {
	return leakage.MeasureMean(t, trials)
}

// NewTensor allocates a zero tensor.
func NewTensor(shape ...int) *Tensor { return tensor.Zeros(shape...) }

// TensorFromSlice wraps a flat row-major slice.
func TensorFromSlice(data []float64, shape ...int) (*Tensor, error) {
	return tensor.FromSlice(data, shape...)
}

// ArgMax returns the index of a tensor's maximum element (class
// prediction).
func ArgMax(t *Tensor) int { return tensor.ArgMax(t) }
