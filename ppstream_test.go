package ppstream

import (
	mathrand "math/rand"
	"os"
	"path/filepath"
	"testing"

	"ppstream/internal/nn"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	key, err := GenerateKey(256)
	if err != nil {
		t.Fatal(err)
	}
	r := mathrand.New(mathrand.NewSource(90))
	net, err := nn.NewNetwork("api-test", Shape{4},
		nn.NewFC("fc1", 4, 6, r),
		nn.NewReLU("relu"),
		nn.NewFC("fc2", 6, 2, r),
		nn.NewSoftMax("sm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Self-labelled selection set.
	var xs []*Tensor
	var ys []int
	for i := 0; i < 10; i++ {
		x := NewTensor(4)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()
		}
		p, err := net.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		xs, ys = append(xs, x), append(ys, p)
	}
	res, err := SelectScalingFactor(net, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(net, key, Options{Factor: res.Factor, ProfileReps: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	out, lat, err := eng.InferOne(1, xs[0])
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || out == nil {
		t.Error("inference produced no timing or output")
	}
	want, _ := net.Forward(xs[0])
	if ArgMax(want) != ArgMax(out) {
		t.Error("public API inference disagrees with plain forward")
	}
}

func TestPublicModelRegistry(t *testing.T) {
	if len(Models()) != 9 {
		t.Errorf("%d models, want 9", len(Models()))
	}
	spec, err := ModelByName("Breast")
	if err != nil || spec.Arch != "3FC" {
		t.Errorf("ModelByName: %+v, %v", spec, err)
	}
}

func TestSaveLoadModelFiles(t *testing.T) {
	r := mathrand.New(mathrand.NewSource(91))
	net, err := nn.NewNetwork("persist", Shape{2},
		nn.NewFC("fc", 2, 2, r), nn.NewSoftMax("sm"))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := SaveModel(net, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.ModelName != "persist" {
		t.Error("model name lost")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestMeasureLeakagePublic(t *testing.T) {
	x := NewTensor(64)
	r := mathrand.New(mathrand.NewSource(92))
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64()
	}
	d, err := MeasureLeakage(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d >= 1 {
		t.Errorf("leakage %v out of (0,1)", d)
	}
}

func TestTensorHelpers(t *testing.T) {
	tt, err := TensorFromSlice([]float64{1, 9, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ArgMax(tt) != 1 {
		t.Errorf("ArgMax = %d", ArgMax(tt))
	}
	if _, err := TensorFromSlice([]float64{1}, 2); err == nil {
		t.Error("bad shape accepted")
	}
}
