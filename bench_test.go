package ppstream

// One benchmark per paper table/figure (plus micro-benchmarks of the
// primitives they depend on). The experiment benchmarks execute the same
// code paths as cmd/ppbench in quick mode; run with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.

import (
	"crypto/rand"
	mathrand "math/rand"
	"sync"
	"testing"

	"ppstream/internal/baselines"
	"ppstream/internal/experiments"
	"ppstream/internal/leakage"
	"ppstream/internal/nn"
	"ppstream/internal/obfuscate"
	"ppstream/internal/paillier"
	"ppstream/internal/tensor"
)

var benchCfg = experiments.Config{KeyBits: 256, Requests: 4, ProfileReps: 1, Trials: 2, Quick: true}

var (
	benchKeyOnce sync.Once
	benchKey     *paillier.PrivateKey
)

func benchPaillierKey(b *testing.B) *paillier.PrivateKey {
	benchKeyOnce.Do(func() {
		k, err := paillier.GenerateKey(rand.Reader, 512)
		if err != nil {
			b.Fatal(err)
		}
		benchKey = k
	})
	return benchKey
}

// --- Figure 1: Paillier primitive latencies -------------------------------

func BenchmarkFig1PaillierEncrypt(b *testing.B) {
	k := benchPaillierKey(b)
	for i := 0; i < b.N; i++ {
		if _, err := k.PublicKey.EncryptInt64(rand.Reader, int64(i%256)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1PaillierDecrypt(b *testing.B) {
	k := benchPaillierKey(b)
	ct, err := k.PublicKey.EncryptInt64(rand.Reader, 123)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1PaillierScalarMul(b *testing.B) {
	k := benchPaillierKey(b)
	ct, err := k.PublicKey.EncryptInt64(rand.Reader, 123)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.PublicKey.MulScalarInt64(ct, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1PaillierAdd(b *testing.B) {
	k := benchPaillierKey(b)
	c1, _ := k.PublicKey.EncryptInt64(rand.Reader, 7)
	c2, _ := k.PublicKey.EncryptInt64(rand.Reader, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.PublicKey.Add(c1, c2)
	}
}

// BenchmarkFig1Sweep regenerates the whole figure (key-size sweep).
func BenchmarkFig1Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1([]int{256, 512}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Exp#1: Tables IV/V and Figure 6 ---------------------------------------

func BenchmarkTable4And5AccuracySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Tables4And5(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ScalingLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Exp#2: Figure 8 --------------------------------------------------------

func BenchmarkFig8Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Exp#3: Figure 7 --------------------------------------------------------

func BenchmarkFig7LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Exp#4: Figure 9 --------------------------------------------------------

func BenchmarkFig9Partitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Exp#5: Table VI --------------------------------------------------------

func BenchmarkTable6Leakage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6DistanceCorrelation micro-benches the metric itself at
// the paper's largest tensor length.
func BenchmarkTable6DistanceCorrelation(b *testing.B) {
	rng := mathrand.New(mathrand.NewSource(1))
	n := 1 << 10
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := leakage.DistanceCorrelation(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Exp#6: Table VII -------------------------------------------------------

func BenchmarkTable7Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table7(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7EzPCReLU micro-benches the EzPC baseline's dominant
// cost: one garbled-circuit ReLU conversion layer.
func BenchmarkTable7EzPCReLU(b *testing.B) {
	r := mathrand.New(mathrand.NewSource(2))
	net, err := nn.NewNetwork("bench-ezpc", tensor.Shape{8},
		nn.NewFC("fc", 8, 8, r),
		nn.NewReLU("relu"),
		nn.NewFC("fc2", 8, 2, r),
		nn.NewSoftMax("sm"),
	)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Zeros(8)
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := baselines.NewEzPC(net, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := e.Infer(x); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Protocol micro-benchmarks ----------------------------------------------

func BenchmarkProtocolInferSmallFC(b *testing.B) {
	k := benchPaillierKey(b)
	r := mathrand.New(mathrand.NewSource(3))
	net, err := nn.NewNetwork("bench-proto", tensor.Shape{8},
		nn.NewFC("fc1", 8, 8, r),
		nn.NewReLU("relu"),
		nn.NewFC("fc2", 8, 4, r),
		nn.NewSoftMax("sm"),
	)
	if err != nil {
		b.Fatal(err)
	}
	proto, err := BuildProtocol(net, k, 1000, 2)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.Zeros(8)
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proto.Infer(uint64(i), x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObfuscatePermutation(b *testing.B) {
	vals := make([]float64, 1<<13)
	for i := range vals {
		vals[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := obfuscate.NewSeeded(len(vals), int64(i))
		if err != nil {
			b.Fatal(err)
		}
		perm, err := obfuscate.Apply(p, vals)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := obfuscate.Invert(p, perm); err != nil {
			b.Fatal(err)
		}
	}
}
