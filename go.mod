module ppstream

go 1.22
