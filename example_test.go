package ppstream_test

import (
	"fmt"
	"log"
	mathrand "math/rand"

	"ppstream"
	"ppstream/internal/nn"
)

// Example demonstrates the minimal privacy-preserving inference flow:
// generate the data provider's key, build the engine, infer.
func Example() {
	r := mathrand.New(mathrand.NewSource(1))
	net, err := nn.NewNetwork("demo", ppstream.Shape{2},
		nn.NewFC("fc1", 2, 4, r),
		nn.NewReLU("relu"),
		nn.NewFC("fc2", 4, 2, r),
		nn.NewSoftMax("softmax"),
	)
	if err != nil {
		log.Fatal(err)
	}
	key, err := ppstream.GenerateKey(256) // demo size; production uses 2048
	if err != nil {
		log.Fatal(err)
	}
	eng, err := ppstream.NewEngine(net, key, ppstream.Options{Factor: 1000, ProfileReps: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	x, err := ppstream.TensorFromSlice([]float64{0.5, -1.25}, 2)
	if err != nil {
		log.Fatal(err)
	}
	private, _, err := eng.InferOne(1, x)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := net.Forward(x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("private prediction matches plaintext:", ppstream.ArgMax(private) == ppstream.ArgMax(plain))
	// Output: private prediction matches plaintext: true
}

// ExampleMeasureLeakage quantifies what an obfuscated tensor still
// reveals (the paper's Exp#5 metric).
func ExampleMeasureLeakage() {
	x := ppstream.NewTensor(256)
	r := mathrand.New(mathrand.NewSource(2))
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64()
	}
	dcor, err := ppstream.MeasureLeakage(x, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("leakage strictly between 0 and 1:", dcor > 0 && dcor < 0.5)
	// Output: leakage strictly between 0 and 1: true
}

// ExampleModels lists the paper's Table III registry.
func ExampleModels() {
	for _, spec := range ppstream.Models()[:3] {
		fmt.Println(spec.Name, spec.Arch)
	}
	// Output:
	// Breast 3FC
	// Heart 3FC
	// Cardio 3FC
}
