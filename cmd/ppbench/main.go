// Command ppbench regenerates the paper's evaluation tables and figures
// (Section VI). Each subcommand prints the same rows/series the paper
// reports; `ppbench all` runs the full suite.
//
// Usage:
//
//	ppbench [flags] <fig1|table3|table4|table5|fig6|fig7|fig8|fig9|table6|table7|stages|serve|trace|backends|chaos|swarm|top|traces|all>
//
// Flags:
//
//	-keybits N     Paillier key size for latency experiments (default 512)
//	-requests N    streaming batch size (default 8)
//	-reps N        offline profiling repetitions (default 2)
//	-trials N      statistical trial count (default 3)
//	-quick         smallest model subsets (CI mode)
//	-real          wall-clock measurement instead of the calibrated
//	               latency model (use on multi-core hosts)
//	-json          also write a versioned BENCH_<experiment>.json record
//	               (kernel, serve, trace, backends) for CI artifact upload
//
// `ppbench top` is a live console view over a running ppserver's
// /metrics endpoint: per-tick request/round throughput, crypto-op rates
// from the cost meters, and per-stage latency percentiles — plus the
// windowed last-minute rates when the server exposes /debug/live. It
// takes -addr (the ppserver -metrics address), -every, and -iters.
//
// `ppbench traces` lists a running ppserver's tail-sampled span store
// (/debug/traces) and renders the slowest retained trace; it takes
// -addr, -since, -minms, and -limit.
//
// `ppbench swarm` is the open-loop Poisson load harness: it deploys a
// live server, sweeps offered load past saturation, reports the
// latency-vs-load knee, and fails when the SLO burn-rate engine, the
// windowed metrics, or the span store disagree with the run's own
// ground truth.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"ppstream/internal/experiments"
)

func main() {
	keyBits := flag.Int("keybits", 512, "Paillier key size in bits (paper: 2048)")
	requests := flag.Int("requests", 8, "streaming batch size for effective-latency runs")
	reps := flag.Int("reps", 2, "offline profiling repetitions (paper: 100)")
	trials := flag.Int("trials", 3, "trials for statistical measurements")
	quick := flag.Bool("quick", false, "restrict to the smallest model subsets")
	real := flag.Bool("real", false, "wall-clock latency (multi-core hosts) instead of the calibrated model")
	jsonOut := flag.Bool("json", false, "also write a versioned BENCH_<experiment>.json record (kernel, serve, trace)")
	addr := flag.String("addr", "127.0.0.1:7200", "metrics endpoint for `top`/`traces` (ppserver -metrics address)")
	every := flag.Duration("every", 2*time.Second, "poll interval for `top`")
	iters := flag.Int("iters", 0, "frames to render for `top` (0 = until interrupted)")
	since := flag.String("since", "", "for `traces`: only records from the trailing window (e.g. 10m) or an RFC3339 instant")
	minMS := flag.Float64("minms", 0, "for `traces`: only requests at least this many milliseconds")
	limit := flag.Int("limit", 0, "for `traces`: record cap (0 = server default)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ppbench [flags] <experiment>\n\nexperiments:\n")
		fmt.Fprintf(os.Stderr, "  fig1     Paillier benchmark vs key size\n")
		fmt.Fprintf(os.Stderr, "  kernel   linear kernel vs scalar reference (speedup per key size)\n")
		fmt.Fprintf(os.Stderr, "  table3   dataset/model inventory\n")
		fmt.Fprintf(os.Stderr, "  table4   accuracy vs scaling factor (training set)\n")
		fmt.Fprintf(os.Stderr, "  table5   accuracy vs scaling factor (testing set)\n")
		fmt.Fprintf(os.Stderr, "  fig6     latency vs scaling factor\n")
		fmt.Fprintf(os.Stderr, "  fig7     load-balanced allocation on/off\n")
		fmt.Fprintf(os.Stderr, "  fig8     PlainBase/CipherBase/PP-Stream\n")
		fmt.Fprintf(os.Stderr, "  fig9     tensor partitioning on/off\n")
		fmt.Fprintf(os.Stderr, "  table6   obfuscation leakage (distance correlation)\n")
		fmt.Fprintf(os.Stderr, "  table7   comparison with state-of-the-art systems\n")
		fmt.Fprintf(os.Stderr, "  stages   per-stage latency percentiles (p50/p95/p99) from real streaming runs\n")
		fmt.Fprintf(os.Stderr, "  serve    sustained throughput over one multiplexed TCP session at varying client concurrency\n")
		fmt.Fprintf(os.Stderr, "  trace    merged cross-party trace over TCP: per-segment (client/wire/server) p50/p95/p99\n")
		fmt.Fprintf(os.Stderr, "  backends per-round crypto-backend comparison: one live TCP session per profile (latency/privacy-max/mixed), per-round kernel medians and per-backend cost counters\n")
		fmt.Fprintf(os.Stderr, "  chaos    fault-injection smoke: injected delays/resets plus shed/throttle pressure; fails on lost requests or goroutine leaks\n")
		fmt.Fprintf(os.Stderr, "  swarm    open-loop Poisson load sweep over a live server: latency-vs-load knee, SLO burn-rate alert, span-store retention, windowed-metric cross-checks\n")
		fmt.Fprintf(os.Stderr, "  top      live console view over a running ppserver's /metrics and /debug/live (see -addr, -every, -iters)\n")
		fmt.Fprintf(os.Stderr, "  traces   list a running ppserver's tail-sampled span store (see -addr, -since, -minms, -limit)\n")
		fmt.Fprintf(os.Stderr, "  all      everything above\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{
		KeyBits:     *keyBits,
		Requests:    *requests,
		ProfileReps: *reps,
		Trials:      *trials,
		Quick:       *quick,
		RealTime:    *real,
	}
	name := flag.Arg(0)
	if name == "top" {
		if err := experiments.Top(os.Stdout, experiments.TopOptions{Addr: *addr, Every: *every, Iterations: *iters}); err != nil {
			fmt.Fprintf(os.Stderr, "ppbench top: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if name == "traces" {
		if err := experiments.Traces(os.Stdout, experiments.TracesOptions{Addr: *addr, Since: *since, MinMS: *minMS, Limit: *limit}); err != nil {
			fmt.Fprintf(os.Stderr, "ppbench traces: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(name, cfg, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "ppbench %s: %v\n", name, err)
		os.Exit(1)
	}
}

// benchHost pins the run environment recorded in BENCH_*.json.
func benchHost() experiments.BenchHost {
	return experiments.BenchHost{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, NumCPU: runtime.NumCPU()}
}

// emitJSON writes the benchmark's machine-readable record next to the
// console output and announces the artifact path.
func emitJSON(name string, cfg experiments.Config, result any) error {
	path, err := experiments.WriteBenchJSON(".", name, cfg, benchHost(), result)
	if err != nil {
		return err
	}
	fmt.Printf("\n[wrote %s]\n", path)
	return nil
}

func run(name string, cfg experiments.Config, jsonOut bool) error {
	start := time.Now()
	defer func() { fmt.Printf("\n[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond)) }()
	switch name {
	case "fig1":
		bits := []int{256, 512, 1024, 2048}
		if cfg.Quick {
			bits = []int{256, 512}
		}
		res, err := experiments.Fig1(bits, cfg.Trials)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "kernel":
		bits := []int{256, 512, 1024}
		if cfg.Quick {
			bits = []int{256}
		}
		res, err := experiments.Kernel(bits, cfg.Trials)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if jsonOut {
			if err := emitJSON(name, cfg, res); err != nil {
				return err
			}
		}
	case "table3":
		fmt.Print(experiments.Table3Render())
	case "table4", "table5":
		train, test, err := experiments.Tables4And5(cfg)
		if err != nil {
			return err
		}
		if name == "table4" {
			fmt.Print(train.Render())
		} else {
			fmt.Print(test.Render())
		}
	case "fig6":
		res, err := experiments.Fig6(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "fig7":
		res, err := experiments.Fig7(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "fig8":
		res, err := experiments.Fig8(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "fig9":
		res, err := experiments.Fig9(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "table6":
		res, err := experiments.Table6(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "table7":
		res, err := experiments.Table7(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
	case "stages":
		results, err := experiments.StageBreakdowns(cfg)
		if err != nil {
			return err
		}
		for i, res := range results {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(res.Render())
		}
	case "serve":
		res, err := experiments.ServeBench(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if jsonOut {
			if err := emitJSON(name, cfg, res); err != nil {
				return err
			}
		}
	case "trace":
		res, err := experiments.TraceBench(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if jsonOut {
			if err := emitJSON(name, cfg, res); err != nil {
				return err
			}
		}
	case "backends":
		res, err := experiments.BackendsBench(cfg)
		if err != nil {
			return err
		}
		fmt.Print(res.Render())
		if jsonOut {
			if err := emitJSON(name, cfg, res); err != nil {
				return err
			}
		}
	case "chaos":
		res, err := experiments.Chaos(cfg)
		if res != nil {
			fmt.Print(res.Render())
		}
		if err != nil {
			return err
		}
		if jsonOut {
			if err := emitJSON(name, cfg, res); err != nil {
				return err
			}
		}
	case "swarm":
		res, err := experiments.Swarm(cfg)
		if res != nil {
			fmt.Print(res.Render())
			// Write the artifact even on a failed invariant: the sweep is
			// the thing worth debugging from CI.
			if jsonOut {
				if jerr := emitJSON(name, cfg, res); jerr != nil && err == nil {
					err = jerr
				}
			}
		}
		if err != nil {
			return err
		}
	case "all":
		for _, sub := range []string{"fig1", "kernel", "table3", "table4", "table5", "fig6", "fig8", "fig7", "fig9", "table6", "table7", "stages"} {
			if err := run(sub, cfg, jsonOut); err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
			fmt.Println()
		}
	default:
		return fmt.Errorf("unknown experiment %q (run with no arguments for usage)", name)
	}
	return nil
}
