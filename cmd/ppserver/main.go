// Command ppserver hosts the model provider as a network service: it
// loads the vendor's trained model and answers privacy-preserving
// inference sessions from ppclient. The private key never exists on
// this side; each session is keyed by the client's public key from its
// Hello frame.
//
// Usage:
//
//	ppserver -model models/Heart.gob -listen :7100 -factor 10000 -metrics :7200
//
// Each session is multiplexed: round frames from different in-flight
// requests interleave on one connection and are processed concurrently
// up to -window; per-request state abandoned mid-protocol is evicted
// after -idlettl, and requests whose client-propagated deadline expires
// are evicted immediately. Admission control is global across sessions:
// -maxinflight and -shed reject excess or overload-era requests with a
// retryable typed shed error, and -ratelimit/-ratewindow throttle new
// requests per sliding window — clients retry both with backoff.
//
// -profile caps the per-round crypto-backend posture: each session runs
// the STRICTER of this policy and the client's requested profile
// (privacy-max > mixed > latency), and the solved per-round assignment
// rides the round-0 reply for the client to validate. -clearboundary
// admits plaintext execution for trailing rounds at or past the
// leakage-certified boundary (never round 0); leave it 0 unless an
// internal/leakage distance-correlation certification of this model
// says otherwise. With -metrics set, the server's registry (session
// counts, per-round latency percentiles including the kernel/permute
// split, TCP byte/frame counters, runtime gauges) is served at
// http://<addr>/metrics — JSON by default, Prometheus text at
// /metrics/prometheus or with ?format=prometheus — plus /healthz,
// /readyz, and pprof at /debug/pprof/. Windowed (last-minute) views of
// the serve metrics are at /debug/live; tail-sampled request traces
// (-tracedir, -tracesample) are queryable at /debug/traces; -slo
// objectives (e.g. p99=250ms,avail=99.9) are evaluated as multi-window
// burn-rate alerts at /debug/slo. The flight recorder (-flight)
// keeps the last N request traces with per-round crypto-cost profiles,
// served at /debug/flight and dumped to stderr on SIGQUIT; -profiledir
// enables periodic labeled CPU/heap profile capture.
//
// The server emits structured JSON log lines (startup configuration,
// session lifecycle, a shutdown summary with request counts and uptime
// on SIGINT/SIGTERM). On SIGTERM the server first flips /readyz to
// not-ready and raises the serve.draining gauge, then keeps serving for
// -drain so load balancers route traffic away before it exits. Rounds
// slower than -slow are logged with their trace ID, correlating with
// the client's merged trace.
package main

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"ppstream"
	"ppstream/internal/backend"
	"ppstream/internal/obs"
	"ppstream/internal/protocol"
	"ppstream/internal/stream"

	"net"
)

func main() {
	modelPath := flag.String("model", "", "trained model file (required)")
	listen := flag.String("listen", "127.0.0.1:7100", "listen address")
	factor := flag.Int64("factor", 10000, "agreed parameter scaling factor")
	maxWorkers := flag.Int("maxworkers", 8, "per-stage thread cap per session")
	window := flag.Int("window", protocol.DefaultSessionWindow, "concurrent in-flight round frames per session")
	idleTTL := flag.Duration("idlettl", protocol.DefaultIdleTTL, "evict per-request state after this much inactivity")
	maxInFlight := flag.Int64("maxinflight", 0, "shed new requests beyond this many in flight across all sessions (0 disables)")
	shedLatency := flag.Duration("shed", 0, "shed new requests while the recent p95 round latency exceeds this (0 disables)")
	rateLimit := flag.Int("ratelimit", 0, "throttle new requests beyond this many per -ratewindow (0 disables)")
	rateWindow := flag.Duration("ratewindow", time.Second, "sliding window for -ratelimit")
	metricsAddr := flag.String("metrics", "", "serve metrics (JSON + Prometheus) + health + pprof on this address (e.g. :7200; empty disables)")
	profile := flag.String("profile", "", "backend-profile policy cap: sessions run the stricter of this and the client's request (latency, privacy-max, mixed; empty = privacy-max)")
	clearBoundary := flag.Int("clearboundary", 0, "leakage-certified clear boundary: first linear round allowed to run plaintext (0 = never; certify with internal/leakage before lowering)")
	slow := flag.Duration("slow", 0, "log rounds slower than this with their trace ID (0 disables)")
	debugLog := flag.Bool("debug", false, "emit debug-level log lines")
	flightN := flag.Int("flight", obs.DefaultFlightRecent, "flight recorder ring size: keep the last N request traces with cost profiles at /debug/flight and on SIGQUIT (0 disables)")
	profileDir := flag.String("profiledir", "", "write periodic labeled CPU/heap profiles into this directory (empty disables)")
	profileEvery := flag.Duration("profileevery", time.Minute, "continuous-profiling capture period (with -profiledir)")
	sloSpec := flag.String("slo", "", "comma-separated SLO specs evaluated as multi-window burn rates, e.g. p99=250ms,avail=99.9 (served at /debug/slo; empty disables)")
	traceDir := flag.String("tracedir", "", "persist tail-sampled request traces as rotated JSONL under this directory (empty keeps them in memory only)")
	traceSample := flag.Float64("tracesample", 0, "probability of retaining an unremarkable trace in the span store (errored/shed/slowest are always kept)")
	drain := flag.Duration("drain", 2*time.Second, "on SIGTERM, stay up this long after /readyz flips not-ready so load balancers drain us first")
	flag.Parse()
	if *modelPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	level := obs.LevelInfo
	if *debugLog {
		level = obs.LevelDebug
	}
	logger := obs.NewLogger(os.Stdout, level).SetSlowThreshold(*slow)

	srvProfile, err := backend.ParseProfile(*profile)
	if err != nil {
		logger.Error("bad -profile", "err", err.Error())
		os.Exit(2)
	}

	netModel, err := ppstream.LoadModel(*modelPath)
	if err != nil {
		logger.Error("model load failed", "path", *modelPath, "err", err.Error())
		os.Exit(1)
	}
	protocol.RegisterServiceWire()

	// The registry is always on: it feeds the shutdown summary even when
	// no metrics endpoint is exposed.
	reg := obs.NewRegistry("ppserver")
	obs.RegisterRuntimeMetrics(reg)

	// Flight recorder: the last-N / slowest-K / errored request traces
	// with their crypto-cost profiles, served at /debug/flight and dumped
	// to stderr on SIGQUIT. A nil recorder disables recording everywhere.
	var flight *obs.FlightRecorder
	if *flightN > 0 {
		flight = obs.NewFlightRecorder(*flightN, 0, 0)
	}

	// The span store keeps the traces worth keeping: errored, shed, and
	// deadline-expired requests always, the slowest of each window, and a
	// -tracesample slice of the rest. With -tracedir set they survive the
	// process as rotated JSONL; either way they answer /debug/traces.
	traces, err := obs.NewTraceStore(obs.TraceStoreConfig{
		Dir:        *traceDir,
		SampleProb: *traceSample,
		Registry:   reg,
	})
	if err != nil {
		logger.Error("trace store failed", "dir", *traceDir, "err", err.Error())
		os.Exit(1)
	}
	defer traces.Close()

	// SLO engine: declarative objectives evaluated as multi-window
	// burn-rate alerts over every session's request stream. One engine is
	// shared server-wide so the error budget is global.
	var slo *obs.SLOEngine
	if *sloSpec != "" {
		specs, err := obs.ParseSLOSpecs(*sloSpec)
		if err != nil {
			logger.Error("bad -slo", "err", err.Error())
			os.Exit(2)
		}
		slo, err = obs.NewSLOEngine(obs.SLOConfig{Specs: specs, Registry: reg})
		if err != nil {
			logger.Error("slo engine rejected", "err", err.Error())
			os.Exit(2)
		}
	}

	// Admission control is shared across every session so the in-flight
	// bound and rate limit are global to the server, not per connection.
	var shed *protocol.Shedder
	if *maxInFlight > 0 || *shedLatency > 0 {
		shed = protocol.NewShedder(protocol.ShedConfig{
			MaxInFlight:   *maxInFlight,
			LatencyTarget: *shedLatency,
			Registry:      reg,
		})
	}
	var limiter *protocol.RateLimiter
	if *rateLimit > 0 {
		limiter, err = protocol.NewRateLimiter(*rateLimit, *rateWindow)
		if err != nil {
			logger.Error("rate limiter rejected", "err", err.Error())
			os.Exit(1)
		}
	}

	var ready atomic.Bool
	// serve.draining flips to 1 the moment SIGTERM lands: scrapes taken
	// during the drain window are distinguishable from healthy samples.
	var draining atomic.Int64
	reg.GaugeFunc("serve.draining", draining.Load)
	metricsBound := ""
	if *metricsAddr != "" {
		bound, stop, err := obs.ServeOpts(*metricsAddr, obs.HTTPOptions{Ready: ready.Load, Flight: flight, Traces: traces, SLO: slo}, reg)
		if err != nil {
			logger.Error("metrics listener failed", "addr", *metricsAddr, "err", err.Error())
			os.Exit(1)
		}
		defer stop(context.Background())
		metricsBound = bound
	}

	if *profileDir != "" {
		stopProf, err := obs.StartProfileLoop(obs.ProfileLoopOptions{
			Dir:   *profileDir,
			Every: *profileEvery,
			Log:   logger,
		})
		if err != nil {
			logger.Error("profile loop failed", "dir", *profileDir, "err", err.Error())
			os.Exit(1)
		}
		defer stopProf()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Error("listen failed", "addr", *listen, "err", err.Error())
		os.Exit(1)
	}
	ready.Store(true)
	start := time.Now()
	logger.Info("ppserver started",
		"model", netModel.ModelName,
		"params", netModel.ParamCount(),
		"addr", l.Addr().String(),
		"metrics_addr", metricsBound,
		"factor", *factor,
		"window", *window,
		"max_workers", *maxWorkers,
		"idle_ttl", idleTTL.String(),
		"slow_threshold", slow.String(),
		"profile", string(srvProfile),
		"clear_boundary", *clearBoundary,
	)

	// SIGQUIT dumps the flight recorder to stderr and keeps serving —
	// the in-production "what just happened" escape hatch. Registering
	// the handler replaces the runtime's kill-with-stack-dump default.
	if flight != nil {
		quitCh := make(chan os.Signal, 1)
		signal.Notify(quitCh, syscall.SIGQUIT)
		go func() {
			for range quitCh {
				if err := flight.WriteJSON(os.Stderr); err != nil {
					logger.Warn("flight dump failed", "err", err.Error())
				}
			}
		}()
	}

	// Shutdown summary on SIGINT/SIGTERM: what the server did with its
	// uptime, from the same registry the metrics endpoint serves.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		// Drain choreography: flip /readyz first so load balancers stop
		// routing to us, keep accepting the in-flight tail for -drain,
		// then summarize and exit. SIGINT (interactive) skips the wait.
		ready.Store(false)
		draining.Store(1)
		if sig == syscall.SIGTERM && *drain > 0 {
			logger.Info("ppserver draining", "drain", drain.String())
			time.Sleep(*drain)
		}
		snap := reg.Snapshot()
		logger.Info("ppserver shutting down",
			"signal", sig.String(),
			"uptime", time.Since(start).Round(time.Millisecond).String(),
			"sessions_total", snap.Counters["sessions.total"],
			"requests_ok", snap.Counters["requests.completed"],
			"requests_evicted", snap.Counters["requests.evicted"],
			"rounds_served", snap.Counters["rounds.served"],
			"rounds_err", snap.Counters["rounds.errors"],
		)
		os.Exit(0)
	}()

	ctx := context.Background()
	for {
		conn, err := l.Accept()
		if err != nil {
			logger.Error("accept failed", "err", err.Error())
			os.Exit(1)
		}
		go func(conn net.Conn) {
			defer conn.Close()
			edge := stream.NewInstrumentedTCPEdge(conn, reg, "tcp")
			remote := conn.RemoteAddr().String()
			slog := logger.With("remote", remote)
			slog.Info("session opened")
			cfg := protocol.SessionConfig{
				Factor:        *factor,
				MaxWorkers:    *maxWorkers,
				Window:        *window,
				IdleTTL:       *idleTTL,
				Shed:          shed,
				Limiter:       limiter,
				Registry:      reg,
				Log:           slog,
				Flight:        flight,
				Traces:        traces,
				SLO:           slo,
				Profile:       srvProfile,
				ClearBoundary: *clearBoundary,
			}
			if err := protocol.ServeSessionConfig(ctx, edge, edge, netModel, cfg); err != nil {
				slog.Warn("session failed", "err", err.Error())
				return
			}
			slog.Info("session closed")
		}(conn)
	}
}
