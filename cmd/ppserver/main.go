// Command ppserver hosts the model provider as a network service: it
// loads the vendor's trained model and answers privacy-preserving
// inference sessions from ppclient. The private key never exists on
// this side; each session is keyed by the client's public key from its
// Hello frame.
//
// Usage:
//
//	ppserver -model models/Heart.gob -listen :7100 -factor 10000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"ppstream"
	"ppstream/internal/protocol"
	"ppstream/internal/stream"
)

func main() {
	modelPath := flag.String("model", "", "trained model file (required)")
	listen := flag.String("listen", "127.0.0.1:7100", "listen address")
	factor := flag.Int64("factor", 10000, "agreed parameter scaling factor")
	maxWorkers := flag.Int("maxworkers", 8, "per-stage thread cap per session")
	flag.Parse()
	if *modelPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	netModel, err := ppstream.LoadModel(*modelPath)
	if err != nil {
		log.Fatalf("ppserver: %v", err)
	}
	protocol.RegisterServiceWire()

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("ppserver: %v", err)
	}
	fmt.Printf("ppserver: model %q (%d parameters), factor %d, listening on %s\n",
		netModel.ModelName, netModel.ParamCount(), *factor, l.Addr())

	ctx := context.Background()
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Fatalf("ppserver: accept: %v", err)
		}
		go func(conn net.Conn) {
			defer conn.Close()
			edge := stream.NewTCPEdge(conn)
			fmt.Printf("ppserver: session from %s\n", conn.RemoteAddr())
			if err := protocol.ServeSession(ctx, edge, edge, netModel, *factor, *maxWorkers); err != nil {
				log.Printf("ppserver: session %s: %v", conn.RemoteAddr(), err)
				return
			}
			fmt.Printf("ppserver: session %s closed\n", conn.RemoteAddr())
		}(conn)
	}
}
