// Command ppserver hosts the model provider as a network service: it
// loads the vendor's trained model and answers privacy-preserving
// inference sessions from ppclient. The private key never exists on
// this side; each session is keyed by the client's public key from its
// Hello frame.
//
// Usage:
//
//	ppserver -model models/Heart.gob -listen :7100 -factor 10000 -metrics :7200
//
// Each session is multiplexed: round frames from different in-flight
// requests interleave on one connection and are processed concurrently
// up to -window; per-request state abandoned mid-protocol is evicted
// after -idlettl. With -metrics set, a JSON snapshot of the server's
// registry (session counts, per-round latency percentiles, TCP
// byte/frame counters) is served at http://<addr>/metrics, and pprof at
// /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"ppstream"
	"ppstream/internal/obs"
	"ppstream/internal/protocol"
	"ppstream/internal/stream"
)

func main() {
	modelPath := flag.String("model", "", "trained model file (required)")
	listen := flag.String("listen", "127.0.0.1:7100", "listen address")
	factor := flag.Int64("factor", 10000, "agreed parameter scaling factor")
	maxWorkers := flag.Int("maxworkers", 8, "per-stage thread cap per session")
	window := flag.Int("window", protocol.DefaultSessionWindow, "concurrent in-flight round frames per session")
	idleTTL := flag.Duration("idlettl", protocol.DefaultIdleTTL, "evict per-request state after this much inactivity")
	metricsAddr := flag.String("metrics", "", "serve JSON metrics + pprof on this address (e.g. :7200; empty disables)")
	flag.Parse()
	if *modelPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	netModel, err := ppstream.LoadModel(*modelPath)
	if err != nil {
		log.Fatalf("ppserver: %v", err)
	}
	protocol.RegisterServiceWire()

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry("ppserver")
		bound, _, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			log.Fatalf("ppserver: %v", err)
		}
		fmt.Printf("ppserver: metrics on http://%s/metrics (pprof at /debug/pprof/)\n", bound)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("ppserver: %v", err)
	}
	fmt.Printf("ppserver: model %q (%d parameters), factor %d, listening on %s\n",
		netModel.ModelName, netModel.ParamCount(), *factor, l.Addr())

	ctx := context.Background()
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Fatalf("ppserver: accept: %v", err)
		}
		go func(conn net.Conn) {
			defer conn.Close()
			var edge stream.Edge
			if reg != nil {
				edge = stream.NewInstrumentedTCPEdge(conn, reg, "tcp")
			} else {
				edge = stream.NewTCPEdge(conn)
			}
			fmt.Printf("ppserver: session from %s\n", conn.RemoteAddr())
			cfg := protocol.SessionConfig{
				Factor:     *factor,
				MaxWorkers: *maxWorkers,
				Window:     *window,
				IdleTTL:    *idleTTL,
				Registry:   reg,
			}
			if err := protocol.ServeSessionConfig(ctx, edge, edge, netModel, cfg); err != nil {
				log.Printf("ppserver: session %s: %v", conn.RemoteAddr(), err)
				return
			}
			fmt.Printf("ppserver: session %s closed\n", conn.RemoteAddr())
		}(conn)
	}
}
