// Command pptrain trains the paper's Table III models on their synthetic
// datasets and saves them in gob format, so cmd/ppinfer and external
// deployments can load them without retraining.
//
// Usage:
//
//	pptrain [-out DIR] [-model NAME]
//
// With no -model it trains all nine models.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ppstream"
)

func main() {
	outDir := flag.String("out", "models", "output directory for trained models")
	modelName := flag.String("model", "", "train a single Table III model (default: all nine)")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "pptrain: %v\n", err)
		os.Exit(1)
	}
	specs := ppstream.Models()
	if *modelName != "" {
		spec, err := ppstream.ModelByName(*modelName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pptrain: %v\n", err)
			os.Exit(1)
		}
		specs = []ppstream.ModelSpec{spec}
	}
	for _, spec := range specs {
		start := time.Now()
		net, ds, err := ppstream.PrepareModel(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pptrain %s: %v\n", spec.Name, err)
			os.Exit(1)
		}
		trainAcc, err := net.Accuracy(ds.TrainX, ds.TrainY)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pptrain %s: %v\n", spec.Name, err)
			os.Exit(1)
		}
		testAcc, err := net.Accuracy(ds.TestX, ds.TestY)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pptrain %s: %v\n", spec.Name, err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, spec.Name+".gob")
		if err := ppstream.SaveModel(net, path); err != nil {
			fmt.Fprintf(os.Stderr, "pptrain %s: %v\n", spec.Name, err)
			os.Exit(1)
		}
		fmt.Printf("%-12s %-10s train %.2f%%  test %.2f%%  %d params  -> %s (%v)\n",
			spec.Name, spec.Arch, trainAcc*100, testAcc*100, net.ParamCount(), path,
			time.Since(start).Round(time.Millisecond))
	}
}
