// Command ppinfer runs one privacy-preserving inference end-to-end: it
// loads a trained model (from cmd/pptrain), generates a data-provider
// key, selects the scaling factor, builds the PP-Stream engine, and
// infers either a synthetic sample or a comma-separated input vector.
//
// Usage:
//
//	ppinfer -model models/Heart.gob [-keybits 512] [-cores 8] [-input 1.2,0.3,...]
//
// With -stream N, it additionally runs N requests through the real
// streaming pipeline and prints the measured per-stage latency
// percentile table (queue wait + busy, p50/p95/p99).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ppstream"
	"ppstream/internal/experiments"
	"ppstream/internal/models"
)

func main() {
	modelPath := flag.String("model", "", "path to a trained model (required)")
	keyBits := flag.Int("keybits", 512, "Paillier key size")
	cores := flag.Int("cores", 8, "total cores across the deployment")
	inputCSV := flag.String("input", "", "comma-separated input values (default: a synthetic test sample)")
	streamN := flag.Int("stream", 0, "also stream N requests through the pipeline and print per-stage percentiles")
	flag.Parse()
	if *modelPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*modelPath, *keyBits, *cores, *inputCSV, *streamN); err != nil {
		fmt.Fprintf(os.Stderr, "ppinfer: %v\n", err)
		os.Exit(1)
	}
}

func run(modelPath string, keyBits, cores int, inputCSV string, streamN int) error {
	net, err := ppstream.LoadModel(modelPath)
	if err != nil {
		return err
	}
	fmt.Printf("model %s: input %v, %d parameters\n", net.ModelName, net.InputShape, net.ParamCount())

	// Input: parsed vector or a fresh synthetic sample matching the
	// model's Table III dataset.
	var x *ppstream.Tensor
	var xs []*ppstream.Tensor
	var ys []int
	if inputCSV != "" {
		vals, err := parseCSV(inputCSV)
		if err != nil {
			return err
		}
		x, err = ppstream.TensorFromSlice(vals, net.InputShape...)
		if err != nil {
			return err
		}
	}
	if spec, err := models.ByName(net.ModelName); err == nil {
		ds, err := spec.Dataset()
		if err != nil {
			return err
		}
		if x == nil {
			x = ds.TestX[0]
		}
		n := 20
		if n > len(ds.TrainX) {
			n = len(ds.TrainX)
		}
		xs, ys = ds.TrainX[:n], ds.TrainY[:n]
	}
	if x == nil {
		return fmt.Errorf("model %q is not in the Table III registry; provide -input", net.ModelName)
	}

	key, err := ppstream.GenerateKey(keyBits)
	if err != nil {
		return err
	}
	factor := int64(10000)
	if xs != nil {
		sel, err := ppstream.SelectScalingFactor(net, xs, ys)
		if err != nil {
			return err
		}
		factor = sel.Factor
		fmt.Printf("selected scaling factor: 10^%d (accuracy %.2f%% vs original %.2f%%)\n",
			sel.Exponent, sel.ScaledAccuracy*100, sel.OriginalAccuracy*100)
	}

	spec, specErr := models.ByName(net.ModelName)
	topo := ppstream.Topology{ModelServers: 1, DataServers: 1, CoresPerServer: cores / 2}
	if specErr == nil {
		n := spec.ModelServers + spec.DataServers
		per := cores / n
		if per < 1 {
			per = 1
		}
		topo = ppstream.Topology{ModelServers: spec.ModelServers, DataServers: spec.DataServers, CoresPerServer: per}
	}
	eng, err := ppstream.NewEngine(net, key, ppstream.Options{
		Factor:          factor,
		Topology:        topo,
		LoadBalance:     true,
		TensorPartition: true,
		ProfileReps:     1,
		ProfileSample:   x,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	if report, err := eng.Report(); err == nil {
		fmt.Println("deployment plan:")
		for _, r := range report {
			kind := "non-linear"
			if r.Linear {
				kind = "linear"
			}
			fmt.Printf("  %-40s %-10s %-9s threads=%d T=%.2fms\n",
				r.Name, kind, r.Server, r.Threads, r.Time*1000)
		}
	}

	plain, err := net.Forward(x)
	if err != nil {
		return err
	}
	out, latency, err := eng.InferOne(1, x)
	if err != nil {
		return err
	}
	fmt.Printf("privacy-preserving inference: class %d (latency %v)\n", ppstream.ArgMax(out), latency)
	fmt.Printf("plaintext reference:          class %d\n", ppstream.ArgMax(plain))
	fmt.Printf("output distribution: %v\n", truncated(out.Data()))
	if sim, err := eng.Simulate(8); err == nil {
		fmt.Printf("modelled streaming latency at %d cores: %v/request (bottleneck %v)\n",
			topo.TotalCores(), sim.Effective, sim.Bottleneck)
	}
	if streamN > 0 {
		inputs := make([]*ppstream.Tensor, streamN)
		for i := range inputs {
			inputs[i] = x
		}
		_, stats, err := eng.InferStream(context.Background(), inputs)
		if err != nil {
			return err
		}
		fmt.Printf("\nstreamed %d requests: makespan %v, effective latency %v/request\n",
			stats.Requests, stats.Makespan, stats.EffectiveLatency)
		fmt.Print(experiments.BreakdownFromTraces(net.ModelName, stats.Traces).Render())
	}
	return nil
}

func parseCSV(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing input element %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func truncated(vals []float64) []float64 {
	if len(vals) > 10 {
		vals = vals[:10]
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = float64(int(v*10000)) / 10000
	}
	return out
}
