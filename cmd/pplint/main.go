// Command pplint runs PP-Stream's repo-specific static analyzers: the
// security and wire-compatibility invariants the compiler cannot check
// (see internal/analysis). It exits non-zero when any diagnostic fires.
//
// Usage:
//
//	pplint [-update] [-rules rule1,rule2] [-json] [-listrules] [packages...]
//
// Packages default to ./... (the whole module). -update regenerates the
// wire-schema lock (internal/protocol/wire.lock) from the current tree;
// use it only for intentional, additive wire changes. -json emits
// diagnostics as a JSON array on stdout for machine consumers (exit
// status is unchanged: 1 when diagnostics fire, 2 on analysis errors).
// -listrules prints the registered analyzer names and one-line docs and
// exits; CI pins this listing against a golden file so adding or
// removing a rule is a reviewed change. A diagnostic is suppressed by a
// same-line (or directly-above) comment:
//
//	//pplint:ignore rule reason
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"ppstream/internal/analysis"
)

func main() {
	update := flag.Bool("update", false, "regenerate the wire schema lock instead of diffing against it")
	rules := flag.String("rules", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	listRules := flag.Bool("listrules", false, "print registered analyzer names and docs, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pplint [-update] [-rules list] [-json] [-listrules] [packages...]\n\nAnalyzers:\n")
		writeRuleList(os.Stderr)
		flag.PrintDefaults()
	}
	flag.Parse()
	if *listRules {
		writeRuleList(os.Stdout)
		return
	}
	if err := run(flag.Args(), *update, *rules, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "pplint:", err)
		os.Exit(2)
	}
}

// writeRuleList prints one "name  doc" line per registered analyzer, in
// registration order. cmd/pplint's golden test pins this output.
func writeRuleList(w io.Writer) {
	for _, a := range analysis.Analyzers(analysis.WirecompatConfig{}) {
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, a.Doc)
	}
}

// jsonDiagnostic is the machine-readable diagnostic shape emitted by
// -json. Field names are part of the tool's interface; CI and editor
// integrations parse them.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func run(patterns []string, update bool, rules string, asJSON bool) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return err
	}
	pkgs, err := loader.LoadModule(patterns)
	if err != nil {
		return err
	}
	var typeErrs int
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintln(os.Stderr, "pplint: type error:", terr)
			typeErrs++
		}
	}
	if typeErrs > 0 {
		return fmt.Errorf("%d type errors — analysis would be unreliable", typeErrs)
	}
	analyzers := analysis.Analyzers(analysis.WirecompatConfig{
		LockPath: filepath.Join(root, analysis.DefaultWireLockPath),
		Structs:  analysis.DefaultWireStructs(),
		Update:   update,
	})
	if rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				filtered = append(filtered, a)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("no analyzers match -rules=%s", rules)
		}
		analyzers = filtered
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		return err
	}
	for i := range diags {
		// Print module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	if asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Rule: d.Rule, Message: d.Msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pplint: %d diagnostics\n", len(diags))
		os.Exit(1)
	}
	return nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
