// Command pplint runs PP-Stream's repo-specific static analyzers: the
// security and wire-compatibility invariants the compiler cannot check
// (see internal/analysis). It exits non-zero when any diagnostic fires.
//
// Usage:
//
//	pplint [-update] [-rules rule1,rule2] [packages...]
//
// Packages default to ./... (the whole module). -update regenerates the
// wire-schema lock (internal/protocol/wire.lock) from the current tree;
// use it only for intentional, additive wire changes. A diagnostic is
// suppressed by a same-line (or directly-above) comment:
//
//	//pplint:ignore rule reason
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ppstream/internal/analysis"
)

func main() {
	update := flag.Bool("update", false, "regenerate the wire schema lock instead of diffing against it")
	rules := flag.String("rules", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pplint [-update] [-rules list] [packages...]\n\nAnalyzers:\n")
		for _, a := range analysis.Analyzers(analysis.WirecompatConfig{}) {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(flag.Args(), *update, *rules); err != nil {
		fmt.Fprintln(os.Stderr, "pplint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, update bool, rules string) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return err
	}
	pkgs, err := loader.LoadModule(patterns)
	if err != nil {
		return err
	}
	var typeErrs int
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintln(os.Stderr, "pplint: type error:", terr)
			typeErrs++
		}
	}
	if typeErrs > 0 {
		return fmt.Errorf("%d type errors — analysis would be unreliable", typeErrs)
	}
	analyzers := analysis.Analyzers(analysis.WirecompatConfig{
		LockPath: filepath.Join(root, analysis.DefaultWireLockPath),
		Structs:  analysis.DefaultWireStructs(),
		Update:   update,
	})
	if rules != "" {
		want := map[string]bool{}
		for _, r := range strings.Split(rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				filtered = append(filtered, a)
			}
		}
		if len(filtered) == 0 {
			return fmt.Errorf("no analyzers match -rules=%s", rules)
		}
		analyzers = filtered
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		return err
	}
	for _, d := range diags {
		// Print module-relative paths so output is stable across checkouts.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pplint: %d diagnostics\n", len(diags))
		os.Exit(1)
	}
	return nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
