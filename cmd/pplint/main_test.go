package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/rules.golden from the current analyzer registry")

// TestRuleListGolden pins the registered analyzer set: adding, renaming,
// or dropping a rule must show up as a diff against testdata/rules.golden
// and therefore be a reviewed change, not a silent registry edit.
// Regenerate intentionally with: go test ./cmd/pplint -update-golden
func TestRuleListGolden(t *testing.T) {
	var buf bytes.Buffer
	writeRuleList(&buf)
	golden := filepath.Join("testdata", "rules.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("analyzer registry drifted from testdata/rules.golden\n--- got ---\n%s--- want ---\n%s(regenerate with go test ./cmd/pplint -update-golden if intentional)", buf.Bytes(), want)
	}
}
