// Command ppclient is the data provider: it connects to a ppserver,
// establishes a session with its own fresh Paillier key, and runs
// privacy-preserving inferences. Only ciphertexts leave this process;
// the server never sees the inputs or the key.
//
// The -model file provides the network ARCHITECTURE the two parties
// agreed on (layer kinds and shapes); the client never reads linear
// weights from it.
//
// Usage:
//
//	ppclient -model models/Heart.gob -addr 127.0.0.1:7100 -factor 10000 -n 3
//
// With -concurrency C > 1, C goroutines share the single multiplexed
// session: their round frames interleave on one connection and the
// client prints aggregate throughput alongside per-inference results.
//
// With -profile, the client requests a backend profile (latency,
// privacy-max, mixed); the session runs the stricter of the request and
// the server's policy, and the client validates the announced per-round
// plan before honoring it — a privacy-max client rejects any plan that
// moves a round off Paillier.
//
// With -trace, every inference carries a distributed trace ID; the
// client prints the first request's merged cross-party trace (its own
// spans, the server's spans shipped back in the final round frame, and
// the inferred wire gap per round) plus the per-segment p50/p95/p99
// breakdown across all requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"ppstream"
	"ppstream/internal/backend"
	"ppstream/internal/models"
	"ppstream/internal/obs"
	"ppstream/internal/protocol"
	"ppstream/internal/stream"
)

func main() {
	modelPath := flag.String("model", "", "architecture file (required)")
	addr := flag.String("addr", "127.0.0.1:7100", "ppserver address")
	factor := flag.Int64("factor", 10000, "agreed parameter scaling factor")
	keyBits := flag.Int("keybits", 512, "Paillier key size")
	workers := flag.Int("workers", 2, "requested per-stage threads")
	count := flag.Int("n", 3, "number of inferences to run")
	concurrency := flag.Int("concurrency", 1, "concurrent in-flight inferences over the one session")
	trace := flag.Bool("trace", false, "print the merged cross-party trace and per-segment breakdown")
	profile := flag.String("profile", "", "requested backend profile (latency, privacy-max, mixed; empty = privacy-max); the session runs the stricter of this and the server's policy")
	deadline := flag.Duration("deadline", 0, "per-inference deadline budget, propagated to the server on every round frame (0 = none)")
	retries := flag.Int("retries", protocol.DefaultRetryAttempts, "max attempts when the server sheds or throttles a request start")
	flag.Parse()
	if *modelPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	arch, err := ppstream.LoadModel(*modelPath)
	if err != nil {
		log.Fatalf("ppclient: %v", err)
	}
	protocol.RegisterServiceWire()

	key, err := ppstream.GenerateKey(*keyBits)
	if err != nil {
		log.Fatalf("ppclient: %v", err)
	}
	edge, err := stream.DialEdge(*addr)
	if err != nil {
		log.Fatalf("ppclient: %v", err)
	}
	if *concurrency < 1 {
		*concurrency = 1
	}
	ctx := context.Background()
	opts := protocol.ClientOptions{
		Workers:  *workers,
		Window:   *concurrency,
		Deadline: *deadline,
		Retry:    protocol.RetryPolicy{MaxAttempts: *retries},
		Profile:  backend.Profile(*profile),
	}
	client, err := protocol.NewClientOpts(ctx, edge, edge, arch, key, *factor, opts)
	if err != nil {
		log.Fatalf("ppclient: %v", err)
	}
	defer client.Close()

	// Inputs: synthetic samples from the model's Table III dataset when
	// available, zeros otherwise.
	var inputs []*ppstream.Tensor
	if spec, err := models.ByName(arch.ModelName); err == nil {
		if ds, err := spec.Dataset(); err == nil {
			for i := 0; i < *count && i < len(ds.TestX); i++ {
				inputs = append(inputs, ds.TestX[i])
			}
		}
	}
	for len(inputs) < *count {
		inputs = append(inputs, ppstream.NewTensor(arch.InputShape...))
	}

	// All workers share the one multiplexed session; with -concurrency 1
	// this degenerates to the old sequential loop.
	var (
		printMu sync.Mutex
		wg      sync.WaitGroup
		failed  bool
		jobs    = make(chan int)
		trees   = make([]*obs.TraceTree, len(inputs))
	)
	begin := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				start := time.Now()
				var (
					out  *ppstream.Tensor
					tree *obs.TraceTree
					err  error
				)
				if *trace {
					out, tree, err = client.InferTraced(ctx, inputs[i])
				} else {
					out, err = client.Infer(ctx, inputs[i])
				}
				printMu.Lock()
				if err != nil {
					failed = true
					fmt.Fprintf(os.Stderr, "ppclient: inference %d: %v\n", i, err)
				} else {
					trees[i] = tree
					label := ""
					if tree != nil {
						label = " trace " + tree.ID
					}
					fmt.Printf("inference %d: class %d (latency %v, distribution head %v)%s\n",
						i, ppstream.ArgMax(out), time.Since(start).Round(time.Microsecond), head(out.Data()), label)
				}
				printMu.Unlock()
			}
		}()
	}
	for i := range inputs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(begin)
	fmt.Printf("%d inferences at concurrency %d in %v (%.2f req/s)\n",
		len(inputs), *concurrency, elapsed.Round(time.Millisecond),
		float64(len(inputs))/elapsed.Seconds())
	if *trace && !failed {
		fmt.Printf("\nfirst request's merged cross-party trace:\n%s", obs.RenderTree(trees[0]))
		fmt.Printf("\nper-segment breakdown across %d requests:\n%s", len(inputs), obs.RenderBreakdown(obs.Breakdown(trees)))
	}
	if failed {
		client.Close()
		os.Exit(1)
	}
}

func head(vals []float64) []float64 {
	if len(vals) > 5 {
		vals = vals[:5]
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = float64(int(v*1000)) / 1000
	}
	return out
}
