// Command ppclient is the data provider: it connects to a ppserver,
// establishes a session with its own fresh Paillier key, and runs
// privacy-preserving inferences. Only ciphertexts leave this process;
// the server never sees the inputs or the key.
//
// The -model file provides the network ARCHITECTURE the two parties
// agreed on (layer kinds and shapes); the client never reads linear
// weights from it.
//
// Usage:
//
//	ppclient -model models/Heart.gob -addr 127.0.0.1:7100 -factor 10000 -n 3
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ppstream"
	"ppstream/internal/models"
	"ppstream/internal/protocol"
	"ppstream/internal/stream"
)

func main() {
	modelPath := flag.String("model", "", "architecture file (required)")
	addr := flag.String("addr", "127.0.0.1:7100", "ppserver address")
	factor := flag.Int64("factor", 10000, "agreed parameter scaling factor")
	keyBits := flag.Int("keybits", 512, "Paillier key size")
	workers := flag.Int("workers", 2, "requested per-stage threads")
	count := flag.Int("n", 3, "number of inferences to run")
	flag.Parse()
	if *modelPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	arch, err := ppstream.LoadModel(*modelPath)
	if err != nil {
		log.Fatalf("ppclient: %v", err)
	}
	protocol.RegisterServiceWire()

	key, err := ppstream.GenerateKey(*keyBits)
	if err != nil {
		log.Fatalf("ppclient: %v", err)
	}
	edge, err := stream.DialEdge(*addr)
	if err != nil {
		log.Fatalf("ppclient: %v", err)
	}
	ctx := context.Background()
	client, err := protocol.NewClient(ctx, edge, edge, arch, key, *factor, *workers)
	if err != nil {
		log.Fatalf("ppclient: %v", err)
	}
	defer client.Close()

	// Inputs: synthetic samples from the model's Table III dataset when
	// available, zeros otherwise.
	var inputs []*ppstream.Tensor
	if spec, err := models.ByName(arch.ModelName); err == nil {
		if ds, err := spec.Dataset(); err == nil {
			for i := 0; i < *count && i < len(ds.TestX); i++ {
				inputs = append(inputs, ds.TestX[i])
			}
		}
	}
	for len(inputs) < *count {
		inputs = append(inputs, ppstream.NewTensor(arch.InputShape...))
	}

	for i, x := range inputs {
		start := time.Now()
		out, err := client.Infer(ctx, x)
		if err != nil {
			log.Fatalf("ppclient: inference %d: %v", i, err)
		}
		fmt.Printf("inference %d: class %d (latency %v, distribution head %v)\n",
			i, ppstream.ArgMax(out), time.Since(start).Round(time.Microsecond), head(out.Data()))
	}
}

func head(vals []float64) []float64 {
	if len(vals) > 5 {
		vals = vals[:5]
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = float64(int(v*1000)) / 1000
	}
	return out
}
